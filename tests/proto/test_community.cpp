#include "proto/community.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace realtor::proto {
namespace {

TEST(CommunityMembership, JoinAndExpire) {
  CommunityMembership m(100.0, 0);
  EXPECT_TRUE(m.note_refresh_answered(1, 0.0));
  EXPECT_TRUE(m.is_member_of(1, 50.0));
  EXPECT_TRUE(m.is_member_of(1, 100.0));
  EXPECT_FALSE(m.is_member_of(1, 100.1));
}

TEST(CommunityMembership, RefreshExtends) {
  CommunityMembership m(100.0, 0);
  m.note_refresh_answered(1, 0.0);
  m.note_refresh_answered(1, 80.0);
  EXPECT_TRUE(m.is_member_of(1, 150.0));
}

TEST(CommunityMembership, CountAndActiveOrganizers) {
  CommunityMembership m(100.0, 0);
  m.note_refresh_answered(1, 0.0);
  m.note_refresh_answered(2, 50.0);
  EXPECT_EQ(m.count(60.0), 2u);
  EXPECT_EQ(m.count(120.0), 1u);  // organizer 1 expired
  const auto active = m.active_organizers(120.0);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], 2u);
}

TEST(CommunityMembership, CapEvictsStalestMembership) {
  CommunityMembership m(100.0, 2);
  m.note_refresh_answered(1, 0.0);
  m.note_refresh_answered(2, 10.0);
  // Budget full; organizer 3's fresher HELP evicts organizer 1.
  EXPECT_TRUE(m.note_refresh_answered(3, 20.0));
  EXPECT_FALSE(m.is_member_of(1, 20.0));
  EXPECT_TRUE(m.is_member_of(2, 20.0));
  EXPECT_TRUE(m.is_member_of(3, 20.0));
  EXPECT_EQ(m.count(20.0), 2u);
}

TEST(CommunityMembership, RefreshOfExistingMemberNeverEvicts) {
  CommunityMembership m(100.0, 2);
  m.note_refresh_answered(1, 0.0);
  m.note_refresh_answered(2, 10.0);
  EXPECT_TRUE(m.note_refresh_answered(1, 20.0));  // refresh, not a join
  EXPECT_TRUE(m.is_member_of(2, 20.0));
  EXPECT_EQ(m.count(20.0), 2u);
}

TEST(CommunityMembership, ExpiredMembershipsFreeBudget) {
  CommunityMembership m(10.0, 1);
  m.note_refresh_answered(1, 0.0);
  // At t=50 organizer 1's membership is long gone: no eviction needed.
  EXPECT_TRUE(m.note_refresh_answered(2, 50.0));
  EXPECT_EQ(m.count(50.0), 1u);
  EXPECT_FALSE(m.is_member_of(1, 50.0));
}

TEST(CommunityMembership, PruneRemovesExpired) {
  CommunityMembership m(10.0, 0);
  m.note_refresh_answered(1, 0.0);
  m.note_refresh_answered(2, 5.0);
  m.prune(12.0);
  EXPECT_FALSE(m.is_member_of(1, 12.0));
  EXPECT_TRUE(m.is_member_of(2, 12.0));
}

TEST(CommunityMembership, UnlimitedWhenMaxIsZero) {
  CommunityMembership m(100.0, 0);
  for (NodeId org = 0; org < 50; ++org) {
    EXPECT_TRUE(m.note_refresh_answered(org, 1.0));
  }
  EXPECT_EQ(m.count(1.0), 50u);
}

TEST(CommunityMembership, ClearEmpties) {
  CommunityMembership m(100.0, 0);
  m.note_refresh_answered(1, 0.0);
  m.clear();
  EXPECT_EQ(m.count(0.0), 0u);
}

}  // namespace
}  // namespace realtor::proto
