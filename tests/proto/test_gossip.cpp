#include "proto/gossip.hpp"

#include <gtest/gtest.h>

#include "fake_transport.hpp"
#include "net/topology.hpp"
#include "proto/factory.hpp"
#include "sim/engine.hpp"

namespace realtor::proto {
namespace {

using testing::FakeTransport;

class GossipTest : public ::testing::Test {
 protected:
  ProtocolEnv make_env() {
    ProtocolEnv env;
    env.engine = &engine_;
    env.topology = &topo_;
    env.transport = &transport_;
    env.local_occupancy = [this] { return occupancy_; };
    env.seed = 7;
    return env;
  }

  ProtocolConfig config_;
  sim::Engine engine_;
  net::Topology topo_ = net::make_mesh(3, 3);
  FakeTransport transport_;
  double occupancy_ = 0.0;
};

TEST_F(GossipTest, RoundsSendFanoutUnicasts) {
  config_.gossip_interval = 1.0;
  config_.gossip_fanout = 2;
  GossipProtocol p(0, config_, make_env());
  p.start();
  engine_.run_until(3.5);
  EXPECT_EQ(transport_.unicast_count(), 6u);  // 3 rounds x fanout 2
  for (const auto& sent : transport_.unicasts) {
    const auto& gossip = std::get<GossipMsg>(sent.msg);
    EXPECT_EQ(gossip.origin, 0u);
    EXPECT_FALSE(gossip.reply);
    ASSERT_FALSE(gossip.digest.empty());
  }
}

TEST_F(GossipTest, SelfEntryVersionGrowsWithStatusChanges) {
  GossipProtocol p(0, config_, make_env());
  const auto v0 = p.version_of(0);
  p.on_status_change(0.5);
  p.on_status_change(0.7);
  EXPECT_EQ(p.version_of(0), v0 + 2);
  EXPECT_DOUBLE_EQ(p.availability_of(0), 0.3);
}

TEST_F(GossipTest, MergeTakesNewerVersionsOnly) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg msg;
  msg.origin = 3;
  msg.reply = true;  // replies are not re-answered
  msg.digest = {DigestEntry{3, 0.8, 5, 255}, DigestEntry{4, 0.6, 2, 255}};
  p.on_message(3, Message{msg});
  EXPECT_DOUBLE_EQ(p.availability_of(3), 0.8);
  EXPECT_DOUBLE_EQ(p.availability_of(4), 0.6);

  // Stale update for node 3 (version 4 < 5) is ignored; newer one wins.
  GossipMsg stale;
  stale.origin = 4;
  stale.reply = true;
  stale.digest = {DigestEntry{3, 0.1, 4, 255}};
  p.on_message(4, Message{stale});
  EXPECT_DOUBLE_EQ(p.availability_of(3), 0.8);

  GossipMsg fresh;
  fresh.origin = 4;
  fresh.reply = true;
  fresh.digest = {DigestEntry{3, 0.2, 6, 255}};
  p.on_message(4, Message{fresh});
  EXPECT_DOUBLE_EQ(p.availability_of(3), 0.2);
}

TEST_F(GossipTest, PushTriggersPullReply) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg push;
  push.origin = 5;
  push.reply = false;
  push.digest = {DigestEntry{5, 0.9, 1, 255}};
  p.on_message(5, Message{push});
  ASSERT_EQ(transport_.unicast_count(), 1u);
  EXPECT_EQ(transport_.unicasts[0].to, 5u);
  const auto& reply = std::get<GossipMsg>(transport_.unicasts[0].msg);
  EXPECT_TRUE(reply.reply);
  // Our reply digest already contains the merged entry for node 5.
  bool has_5 = false;
  for (const auto& entry : reply.digest) {
    if (entry.node == 5) has_5 = true;
  }
  EXPECT_TRUE(has_5);
}

TEST_F(GossipTest, ReplyDoesNotCauseReplyStorm) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg reply;
  reply.origin = 5;
  reply.reply = true;
  reply.digest = {DigestEntry{5, 0.9, 1, 255}};
  p.on_message(5, Message{reply});
  EXPECT_EQ(transport_.unicast_count(), 0u);
}

TEST_F(GossipTest, CandidatesRankedAndFiltered) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg msg;
  msg.origin = 1;
  msg.reply = true;
  msg.digest = {DigestEntry{1, 0.9, 1, 1}, DigestEntry{2, 0.5, 1, 3},
                DigestEntry{3, 0.05, 1, 255}};
  p.on_message(1, Message{msg});
  EXPECT_EQ(p.migration_candidates(), (std::vector<NodeId>{1, 2}));
  CandidateQuery secure;
  secure.min_security = 2;
  EXPECT_EQ(p.migration_candidates(secure), (std::vector<NodeId>{2}));
}

TEST_F(GossipTest, DeadPeersExcludedFromCandidates) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg msg;
  msg.origin = 1;
  msg.reply = true;
  msg.digest = {DigestEntry{1, 0.9, 1, 255}};
  p.on_message(1, Message{msg});
  topo_.set_alive(1, false);
  EXPECT_TRUE(p.migration_candidates().empty());
}

TEST_F(GossipTest, MigrationFeedbackAdjustsDigest) {
  GossipProtocol p(0, config_, make_env());
  GossipMsg msg;
  msg.origin = 1;
  msg.reply = true;
  msg.digest = {DigestEntry{1, 0.9, 1, 255}};
  p.on_message(1, Message{msg});
  p.on_migration_result(1, 0.3, true);
  EXPECT_NEAR(p.availability_of(1), 0.6, 1e-9);
  p.on_migration_result(1, 0.3, false);
  EXPECT_DOUBLE_EQ(p.availability_of(1), 0.0);
}

TEST_F(GossipTest, IgnoresForeignMessageTypes) {
  GossipProtocol p(0, config_, make_env());
  p.on_message(1, Message{HelpMsg{1, 0, 0.1}});
  p.on_message(1, Message{PledgeMsg{1, 0.9, 0, 1.0}});
  p.on_message(1, Message{PushAdvertMsg{1, 0.9}});
  EXPECT_EQ(transport_.unicast_count(), 0u);
  EXPECT_EQ(p.digest_size(), 1u);  // only the self entry
}

// Convergence property: in a fully driven network, every node learns every
// other node's latest availability within a few rounds.
TEST(GossipConvergence, DigestsConvergeAcrossNodes) {
  sim::Engine engine;
  net::Topology topo = net::make_mesh(3, 3);
  std::vector<std::unique_ptr<DiscoveryProtocol>> protocols;
  std::vector<GossipProtocol*> gossips;
  std::vector<double> occupancy(9, 0.0);

  // Loop-back transport delivering directly between instances.
  class LoopTransport final : public Transport {
   public:
    explicit LoopTransport(std::vector<std::unique_ptr<DiscoveryProtocol>>& p,
                           sim::Engine& e)
        : protocols_(p), engine_(e) {}
    void flood(NodeId, const Message&) override {}
    void unicast(NodeId from, NodeId to, const Message& msg) override {
      engine_.schedule_in(0.0, [this, from, to, msg] {
        protocols_[to]->on_message(from, msg);
      });
    }

   private:
    std::vector<std::unique_ptr<DiscoveryProtocol>>& protocols_;
    sim::Engine& engine_;
  };
  LoopTransport transport(protocols, engine);

  ProtocolConfig config;
  config.gossip_interval = 1.0;
  config.gossip_fanout = 2;
  for (NodeId id = 0; id < 9; ++id) {
    ProtocolEnv env;
    env.engine = &engine;
    env.topology = &topo;
    env.transport = &transport;
    env.local_occupancy = [&occupancy, id] { return occupancy[id]; };
    env.seed = 11;
    auto p = std::make_unique<GossipProtocol>(id, config, std::move(env));
    gossips.push_back(p.get());
    protocols.push_back(std::move(p));
  }
  for (NodeId id = 0; id < 9; ++id) {
    occupancy[id] = 0.1 * static_cast<double>(id);
    protocols[id]->on_status_change(occupancy[id]);
    protocols[id]->start();
  }
  engine.run_until(10.0);  // ~10 rounds: far beyond the O(log N) spread
  for (NodeId a = 0; a < 9; ++a) {
    for (NodeId b = 0; b < 9; ++b) {
      EXPECT_NEAR(gossips[a]->availability_of(b), 1.0 - occupancy[b], 1e-9)
          << "node " << a << " view of " << b;
    }
  }
}

}  // namespace
}  // namespace realtor::proto
