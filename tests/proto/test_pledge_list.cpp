#include "proto/pledge_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace realtor::proto {
namespace {

RngStream make_rng() { return RngStream(1, "test-ties"); }

TEST(PledgeList, UpdateAndGet) {
  PledgeList list(100.0, 0.1);
  list.update(3, 0.8, 0.9, 10.0);
  ASSERT_TRUE(list.contains(3));
  const auto entry = list.get(3);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->availability, 0.8);
  EXPECT_DOUBLE_EQ(entry->grant_probability, 0.9);
  EXPECT_DOUBLE_EQ(entry->updated, 10.0);
}

TEST(PledgeList, UpdateIsIdempotent) {
  PledgeList list(100.0, 0.1);
  list.update(3, 0.8, 0.9, 10.0);
  list.update(3, 0.8, 0.9, 10.0);  // duplicate delivery
  EXPECT_EQ(list.size(10.0), 1u);
}

TEST(PledgeList, EntriesExpireAfterTtl) {
  PledgeList list(100.0, 0.1);
  list.update(3, 0.8, 1.0, 0.0);
  EXPECT_EQ(list.size(100.0), 1u);   // exactly at TTL still live
  EXPECT_EQ(list.size(100.1), 0u);   // past TTL invisible
  list.expire(100.1);
  EXPECT_FALSE(list.contains(3));
}

TEST(PledgeList, RefreshExtendsLifetime) {
  PledgeList list(100.0, 0.1);
  list.update(3, 0.8, 1.0, 0.0);
  list.update(3, 0.7, 1.0, 90.0);
  list.expire(150.0);
  EXPECT_TRUE(list.contains(3));
}

TEST(PledgeList, CandidatesSortedByAvailability) {
  PledgeList list(100.0, 0.1);
  list.update(1, 0.3, 1.0, 0.0);
  list.update(2, 0.9, 1.0, 0.0);
  list.update(3, 0.6, 1.0, 0.0);
  auto rng = make_rng();
  const auto candidates = list.candidates(1.0, rng);
  EXPECT_EQ(candidates, (std::vector<NodeId>{2, 3, 1}));
}

TEST(PledgeList, CandidatesExcludeFloorAndExpired) {
  PledgeList list(100.0, 0.1);
  list.update(1, 0.05, 1.0, 0.0);  // at/below floor: pledged "unavailable"
  list.update(2, 0.10, 1.0, 0.0);  // exactly at floor: excluded
  list.update(3, 0.50, 1.0, 0.0);
  list.update(4, 0.90, 1.0, 0.0);
  auto rng = make_rng();
  const auto c1 = list.candidates(50.0, rng);
  EXPECT_EQ(c1, (std::vector<NodeId>{4, 3}));
  // Node 4's entry is stale at t=120 (updated at 0, ttl 100).
  list.update(3, 0.50, 1.0, 60.0);
  const auto c2 = list.candidates(120.0, rng);
  EXPECT_EQ(c2, (std::vector<NodeId>{3}));
}

TEST(PledgeList, DebitReducesAvailability) {
  PledgeList list(100.0, 0.1);
  list.update(1, 0.5, 1.0, 0.0);
  list.debit(1, 0.3);
  EXPECT_DOUBLE_EQ(list.get(1)->availability, 0.2);
  list.debit(1, 0.9);  // clamps at zero
  EXPECT_DOUBLE_EQ(list.get(1)->availability, 0.0);
  list.debit(42, 0.5);  // unknown node: no-op
}

TEST(PledgeList, RemoveDropsEntry) {
  PledgeList list(100.0, 0.1);
  list.update(1, 0.5, 1.0, 0.0);
  list.remove(1);
  EXPECT_FALSE(list.contains(1));
  list.remove(1);  // idempotent
}

TEST(PledgeList, TieBreakIsRandomizedButComplete) {
  PledgeList list(100.0, 0.1);
  for (NodeId n = 0; n < 10; ++n) {
    list.update(n, 0.5, 1.0, 0.0);
  }
  auto rng = make_rng();
  const auto first = list.candidates(1.0, rng);
  EXPECT_EQ(first.size(), 10u);
  // All ten nodes present regardless of order.
  auto sorted = first;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId n = 0; n < 10; ++n) {
    EXPECT_EQ(sorted[n], n);
  }
  // With fresh randomness the order eventually differs (10! orderings).
  bool differed = false;
  for (int trial = 0; trial < 20 && !differed; ++trial) {
    differed = list.candidates(1.0, rng) != first;
  }
  EXPECT_TRUE(differed);
}

TEST(PledgeList, ClearEmptiesList) {
  PledgeList list(100.0, 0.1);
  list.update(1, 0.5, 1.0, 0.0);
  list.clear();
  EXPECT_EQ(list.size(0.0), 0u);
}

}  // namespace
}  // namespace realtor::proto
