#include "proto/availability_table.hpp"

#include <gtest/gtest.h>

namespace realtor::proto {
namespace {

RngStream make_rng() { return RngStream(2, "table-ties"); }

TEST(AvailabilityTable, UnknownPeersAreNotCandidates) {
  AvailabilityTable table(0, 0.1);
  EXPECT_DOUBLE_EQ(table.availability(5), 0.0);
  EXPECT_FALSE(table.heard_from(5));
  auto rng = make_rng();
  EXPECT_TRUE(table.candidates({1, 2, 3}, rng).empty());
}

TEST(AvailabilityTable, UpdateMakesCandidate) {
  AvailabilityTable table(0, 0.1);
  table.update(1, 0.7, 0.0);
  table.update(2, 0.05, 0.0);  // advertised unavailable
  auto rng = make_rng();
  const auto c = table.candidates({1, 2, 3}, rng);
  EXPECT_EQ(c, (std::vector<NodeId>{1}));
}

TEST(AvailabilityTable, SelfNeverCandidate) {
  AvailabilityTable table(1, 0.1);
  table.update(1, 1.0, 0.0);
  auto rng = make_rng();
  EXPECT_TRUE(table.candidates({1}, rng).empty());
}

TEST(AvailabilityTable, SortedByAvailability) {
  AvailabilityTable table(0, 0.1);
  table.update(1, 0.2, 0.0);
  table.update(2, 0.9, 0.0);
  table.update(3, 0.5, 0.0);
  auto rng = make_rng();
  EXPECT_EQ(table.candidates({1, 2, 3}, rng),
            (std::vector<NodeId>{2, 3, 1}));
}

TEST(AvailabilityTable, LastAdvertisementWins) {
  AvailabilityTable table(0, 0.1);
  table.update(1, 0.9, 0.0);
  table.update(1, 0.2, 5.0);
  EXPECT_DOUBLE_EQ(table.availability(1), 0.2);
}

TEST(AvailabilityTable, DebitAndInvalidate) {
  AvailabilityTable table(0, 0.1);
  table.update(1, 0.6, 0.0);
  table.debit(1, 0.2);
  EXPECT_DOUBLE_EQ(table.availability(1), 0.4);
  table.debit(1, 1.0);
  EXPECT_DOUBLE_EQ(table.availability(1), 0.0);
  table.update(1, 0.8, 1.0);
  table.invalidate(1);
  EXPECT_DOUBLE_EQ(table.availability(1), 0.0);
  // Debit of a never-heard peer is a no-op, not a materialization.
  table.debit(9, 0.5);
  EXPECT_FALSE(table.heard_from(9));
}

TEST(AvailabilityTable, CandidatesOnlyFromGivenPeerSet) {
  AvailabilityTable table(0, 0.1);
  table.update(1, 0.9, 0.0);
  table.update(2, 0.9, 0.0);
  auto rng = make_rng();
  // Peer 2 is not in the peer set (e.g. currently dead): excluded.
  EXPECT_EQ(table.candidates({1, 3}, rng), (std::vector<NodeId>{1}));
}

}  // namespace
}  // namespace realtor::proto
