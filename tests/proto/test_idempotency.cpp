// Property tests of the paper's statelessness claims (§4): protocol state
// must be insensitive to duplicate and reordered message delivery, and a
// node restarting cold must converge again — "node failures do not give
// raise to errors".
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "fake_transport.hpp"
#include "net/topology.hpp"
#include "proto/factory.hpp"
#include "sim/engine.hpp"

namespace realtor::proto {
namespace {

using testing::FakeTransport;

struct Harness {
  sim::Engine engine;
  net::Topology topo = net::make_mesh(3, 3);
  FakeTransport transport;
  double occupancy = 0.3;
  ProtocolConfig config;

  std::unique_ptr<DiscoveryProtocol> make(ProtocolKind kind) {
    ProtocolEnv env;
    env.engine = &engine;
    env.topology = &topo;
    env.transport = &transport;
    env.local_occupancy = [this] { return occupancy; };
    env.seed = 3;
    return make_protocol(kind, 0, config, std::move(env));
  }
};

std::vector<Message> sample_inbound() {
  std::vector<Message> msgs;
  msgs.emplace_back(PledgeMsg{3, 0.8, 2, 0.9});
  msgs.emplace_back(PledgeMsg{4, 0.6, 1, 0.8});
  msgs.emplace_back(PushAdvertMsg{5, 0.7});
  msgs.emplace_back(PledgeMsg{6, 0.05, 0, 0.1});
  msgs.emplace_back(PushAdvertMsg{7, 0.4});
  msgs.emplace_back(HelpMsg{8, 3, 0.2});
  GossipMsg gossip;
  gossip.origin = 2;
  gossip.reply = true;
  gossip.digest = {DigestEntry{2, 0.75, 3, 255},
                   DigestEntry{5, 0.55, 1, 255}};
  msgs.emplace_back(std::move(gossip));
  return msgs;
}

NodeId sender_of(const Message& msg) {
  if (const auto* p = std::get_if<PledgeMsg>(&msg)) return p->pledger;
  if (const auto* a = std::get_if<PushAdvertMsg>(&msg)) return a->origin;
  if (const auto* g = std::get_if<GossipMsg>(&msg)) return g->origin;
  return std::get<HelpMsg>(msg).origin;
}

class IdempotencyTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(IdempotencyTest, DuplicateDeliveryLeavesCandidatesUnchanged) {
  Harness once, twice;
  auto p1 = once.make(GetParam());
  auto p2 = twice.make(GetParam());
  for (const Message& msg : sample_inbound()) {
    p1->on_message(sender_of(msg), msg);
    p2->on_message(sender_of(msg), msg);
    p2->on_message(sender_of(msg), msg);  // duplicate every message
  }
  EXPECT_EQ(p1->migration_candidates().size(),
            p2->migration_candidates().size());
}

TEST_P(IdempotencyTest, ReorderedDeliveryYieldsSameCandidateSet) {
  Harness forward, shuffled;
  auto p1 = forward.make(GetParam());
  auto p2 = shuffled.make(GetParam());
  auto msgs = sample_inbound();
  for (const Message& msg : msgs) p1->on_message(sender_of(msg), msg);
  // Reversal keeps per-sender ordering trivial here because each sender
  // appears once — the candidate *set* must match exactly.
  std::reverse(msgs.begin(), msgs.end());
  for (const Message& msg : msgs) p2->on_message(sender_of(msg), msg);

  auto c1 = p1->migration_candidates();
  auto c2 = p2->migration_candidates();
  std::sort(c1.begin(), c1.end());
  std::sort(c2.begin(), c2.end());
  EXPECT_EQ(c1, c2);
}

TEST_P(IdempotencyTest, ColdRestartConvergesAgain) {
  Harness h;
  auto p = h.make(GetParam());
  for (const Message& msg : sample_inbound()) {
    p->on_message(sender_of(msg), msg);
  }
  p->on_self_killed();
  p->on_self_restored();
  // Replaying the same traffic rebuilds an equivalent view.
  for (const Message& msg : sample_inbound()) {
    p->on_message(sender_of(msg), msg);
  }
  Harness fresh;
  auto q = fresh.make(GetParam());
  for (const Message& msg : sample_inbound()) {
    q->on_message(sender_of(msg), msg);
  }
  auto cp = p->migration_candidates();
  auto cq = q->migration_candidates();
  std::sort(cp.begin(), cp.end());
  std::sort(cq.begin(), cq.end());
  EXPECT_EQ(cp, cq);
}

TEST_P(IdempotencyTest, StrayMessagesNeverCrash) {
  Harness h;
  auto p = h.make(GetParam());
  RngStream rng(99, "stray");
  for (int i = 0; i < 1000; ++i) {
    const NodeId from = static_cast<NodeId>(rng.uniform_index(9));
    const double avail = rng.uniform01();
    switch (rng.uniform_index(4)) {
      case 0:
        p->on_message(from, Message{HelpMsg{from, 0, avail}});
        break;
      case 1:
        p->on_message(from, Message{PledgeMsg{from, avail, 1, avail}});
        break;
      case 2: {
        GossipMsg gossip;
        gossip.origin = from;
        gossip.reply = rng.bernoulli(0.5);
        gossip.digest = {DigestEntry{from, avail, rng.next_u64() % 100, 255}};
        p->on_message(from, Message{std::move(gossip)});
        break;
      }
      default:
        p->on_message(from, Message{PushAdvertMsg{from, avail}});
        break;
    }
    if (rng.bernoulli(0.05)) {
      p->on_task_arrival(rng.uniform(0.0, 1.2));
    }
    if (rng.bernoulli(0.05)) {
      p->on_status_change(rng.uniform01());
    }
  }
  h.engine.run_until(200.0);  // drain timers
  // Candidates are well-formed: no self, all within the node range.
  for (const NodeId c : p->migration_candidates()) {
    EXPECT_NE(c, 0u);
    EXPECT_LT(c, 9u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, IdempotencyTest,
                         ::testing::ValuesIn(kExtendedProtocolKinds),
                         [](const ::testing::TestParamInfo<ProtocolKind>& i) {
                           std::string name = to_string(i.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace realtor::proto
