// Model-based randomized testing of the soft-state containers: a naive
// reference implementation processes the same random operation sequence
// and the observable behaviour must match exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "proto/availability_table.hpp"
#include "proto/community.hpp"
#include "proto/pledge_list.hpp"

namespace realtor::proto {
namespace {

// ---------------------------------------------------------- PledgeList

struct RefPledgeEntry {
  double availability;
  SimTime updated;
  std::uint8_t security;
};

class PledgeListModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PledgeListModel, MatchesReferenceUnderRandomOps) {
  constexpr double kTtl = 50.0;
  constexpr double kFloor = 0.1;
  PledgeList list(kTtl, kFloor);
  std::map<NodeId, RefPledgeEntry> reference;
  RngStream rng(GetParam(), "pledge-model");
  SimTime now = 0.0;

  for (int step = 0; step < 2000; ++step) {
    now += rng.exponential(1.0);
    const NodeId node = static_cast<NodeId>(rng.uniform_index(12));
    switch (rng.uniform_index(5)) {
      case 0: {  // update
        const double avail = rng.uniform01();
        const auto security =
            static_cast<std::uint8_t>(rng.uniform_index(4));
        list.update(node, avail, 1.0, now, security);
        reference[node] = RefPledgeEntry{avail, now, security};
        break;
      }
      case 1: {  // debit
        const double fraction = rng.uniform01();
        list.debit(node, fraction);
        const auto it = reference.find(node);
        if (it != reference.end()) {
          it->second.availability =
              std::max(0.0, it->second.availability - fraction);
        }
        break;
      }
      case 2:  // remove
        list.remove(node);
        reference.erase(node);
        break;
      case 3: {  // expire sweep
        list.expire(now);
        for (auto it = reference.begin(); it != reference.end();) {
          if (now - it->second.updated > kTtl) {
            it = reference.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      default: {  // observe candidates
        const auto min_security =
            static_cast<std::uint8_t>(rng.uniform_index(4));
        PledgeQuery query;
        query.min_security = min_security;
        auto got = list.candidates(now, rng, query);
        std::sort(got.begin(), got.end());
        std::vector<NodeId> expected;
        for (const auto& [id, entry] : reference) {
          if (now - entry.updated <= kTtl && entry.availability > kFloor &&
              entry.security >= min_security) {
            expected.push_back(id);
          }
        }
        ASSERT_EQ(got, expected) << "step " << step;
        break;
      }
    }
    // Invariant: live size always matches the reference view.
    std::size_t live = 0;
    for (const auto& [id, entry] : reference) {
      if (now - entry.updated <= kTtl) ++live;
    }
    ASSERT_EQ(list.size(now), live) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PledgeListModel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ------------------------------------------------------ CommunityMembership

class MembershipModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembershipModel, CapAndTtlMatchReference) {
  constexpr double kTtl = 30.0;
  constexpr std::uint32_t kCap = 3;
  CommunityMembership membership(kTtl, kCap);
  std::map<NodeId, SimTime> reference;  // organizer -> last refresh
  RngStream rng(GetParam(), "membership-model");
  SimTime now = 0.0;

  const auto prune_reference = [&] {
    for (auto it = reference.begin(); it != reference.end();) {
      if (now - it->second > kTtl) {
        it = reference.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (int step = 0; step < 1500; ++step) {
    now += rng.exponential(2.0);
    const NodeId organizer = static_cast<NodeId>(rng.uniform_index(8));
    if (rng.bernoulli(0.7)) {  // answer a HELP
      membership.note_refresh_answered(organizer, now);
      prune_reference();
      const auto it = reference.find(organizer);
      if (it != reference.end()) {
        it->second = now;
      } else {
        if (reference.size() >= kCap) {
          // Evict the stalest incumbent.
          auto stalest = reference.begin();
          for (auto cur = reference.begin(); cur != reference.end(); ++cur) {
            if (cur->second < stalest->second) stalest = cur;
          }
          reference.erase(stalest);
        }
        reference.emplace(organizer, now);
      }
    } else {  // observe
      prune_reference();
      auto got = membership.active_organizers(now);
      std::sort(got.begin(), got.end());
      std::vector<NodeId> expected;
      for (const auto& [id, stamp] : reference) expected.push_back(id);
      ASSERT_EQ(got, expected) << "step " << step;
      ASSERT_LE(got.size(), kCap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipModel,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// -------------------------------------------------------- AvailabilityTable

class AvailabilityModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvailabilityModel, MatchesReferenceUnderRandomOps) {
  constexpr double kFloor = 0.1;
  AvailabilityTable table(/*self=*/0, kFloor);
  std::map<NodeId, double> reference;  // node -> availability
  RngStream rng(GetParam(), "table-model");
  std::vector<NodeId> peers;
  for (NodeId n = 1; n < 10; ++n) peers.push_back(n);

  for (int step = 0; step < 2000; ++step) {
    const NodeId node = static_cast<NodeId>(1 + rng.uniform_index(9));
    switch (rng.uniform_index(4)) {
      case 0: {
        const double avail = rng.uniform01();
        table.update(node, avail, 0.0);
        reference[node] = avail;
        break;
      }
      case 1: {
        const double fraction = rng.uniform01();
        table.debit(node, fraction);
        const auto it = reference.find(node);
        if (it != reference.end()) {
          it->second = std::max(0.0, it->second - fraction);
        }
        break;
      }
      case 2:
        table.invalidate(node);
        reference[node] = 0.0;  // invalidate materializes the entry
        break;
      default: {
        auto got = table.candidates(peers, rng);
        std::sort(got.begin(), got.end());
        std::vector<NodeId> expected;
        for (const auto& [id, avail] : reference) {
          if (avail > kFloor) expected.push_back(id);
        }
        ASSERT_EQ(got, expected) << "step " << step;
        break;
      }
    }
    for (const NodeId peer : peers) {
      const auto it = reference.find(peer);
      const double expected = it == reference.end() ? 0.0 : it->second;
      ASSERT_DOUBLE_EQ(table.availability(peer), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityModel,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

}  // namespace
}  // namespace realtor::proto
