#!/usr/bin/env bash
# Enforces realtor_trace's documented exit-code contract (the README's
# "Exit codes" table): 0 = analysis ran and every requested gate passed,
# 1 = bad usage or unreadable input, 2 = a gate tripped. CI relies on
# these values, so every row here is a regression fence — including the
# --follow combinations, where the contract is easy to erode by accident.
#
# Usage: test_trace_exit_codes.sh <realtor_trace> <realtor_sim>
set -u

TRACE_BIN=$1
SIM_BIN=$2
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fails=0

expect() { # expect <description> <wanted-exit> -- <command...>
  local desc=$1 want=$2
  shift 3 # drop desc, want, and the '--' separator
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$desc]: expected exit $want, got $got: $*" >&2
    fails=$((fails + 1))
  else
    echo "ok   [$desc]: exit $got"
  fi
}

# One clean trace (with live ticks, so --follow sees the full event mix)
# and one damaged copy with a malformed tail line.
"$SIM_BIN" --lambda=12 --duration=60 --seed=7 --attack=30:8:1:20 \
  --live-cadence=10 --trace="$tmp/run.jsonl" >/dev/null 2>&1 || {
  echo "FAIL: could not generate the fixture trace" >&2
  exit 1
}
cp "$tmp/run.jsonl" "$tmp/damaged.jsonl"
echo '{truncated mid-write' >>"$tmp/damaged.jsonl"

# exit 0: every requested gate passed.
expect "check on a clean trace" 0 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --check
expect "offline analysis (episodes)" 0 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --episodes
expect "follow --once dashboard" 0 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --once --plain
expect "follow --once --check on a clean trace" 0 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --once --plain --check
# max-frames=1: frames only advance when the file changes, so a higher
# cap would wait forever on a static fixture.
expect "follow --max-frames --check on a clean trace" 0 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --max-frames=1 --plain --check

# exit 1: bad usage or unreadable input.
expect "no arguments" 1 -- \
  "$TRACE_BIN"
expect "missing input file" 1 -- \
  "$TRACE_BIN" "$tmp/does_not_exist.jsonl" --check
expect "follow combined with an offline mode" 1 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --episodes
expect "follow combined with scorecard" 1 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --scorecard
expect "follow --check without a termination condition" 1 -- \
  "$TRACE_BIN" "$tmp/run.jsonl" --follow --check

# exit 2: a gate tripped — here, dropped input under --check (a clean
# verdict over a partial parse must not read as clean).
expect "check with dropped input" 2 -- \
  "$TRACE_BIN" "$tmp/damaged.jsonl" --check
expect "follow --once --check with dropped input" 2 -- \
  "$TRACE_BIN" "$tmp/damaged.jsonl" --follow --once --plain --check

if [ "$fails" -ne 0 ]; then
  echo "$fails contract row(s) violated" >&2
  exit 1
fi
echo "exit-code contract holds (12 rows)"
