// Survivability scorecard: determinism of the rendered JSON (the property
// CI artifacts depend on), attack attribution sanity on a seeded attack
// run, and agreement between the JSONL and flight-recorder pipelines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "obs/flight_reader.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/invariants.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/scorecard.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {
namespace {

// Overloaded 5x5 mesh with one partial attack and a grace warning — the
// shape whose recovery arc the scorecard is built to narrate.
experiment::ScenarioConfig attack_scenario() {
  experiment::ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.sample_interval = 20.0;
  config.attacks.push_back(experiment::AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

std::vector<ParsedEvent> traced_run() {
  const std::string path = ::testing::TempDir() + "scorecard_run.jsonl";
  {
    experiment::Simulation sim(attack_scenario());
    JsonlSink sink(path);
    sim.set_trace_sink(&sink);
    sim.run();
    sink.flush();
  }
  std::vector<ParsedEvent> events;
  std::string error;
  const bool loaded = load_trace_file(path, events, &error);
  std::remove(path.c_str());
  if (!loaded) ADD_FAILURE() << error;
  return events;
}

TEST(Scorecard, AttributesTheAttackWave) {
  const std::vector<ParsedEvent> events = traced_run();
  const Scorecard card = build_scorecard(events);

  EXPECT_EQ(card.records, events.size());
  EXPECT_GT(card.episodes, 0u);
  ASSERT_EQ(card.attacks.size(), 1u);
  const AttackReport& wave = card.attacks[0];
  EXPECT_EQ(wave.victims.size(), 3u);
  // The 2-second grace means the warning solicitation precedes the kill.
  EXPECT_LT(wave.warn_time, wave.kill_time);
  EXPECT_NEAR(wave.kill_time, 62.0, 0.5);  // warn at 60 + 2 s grace
  // Recovery happened: migrations were attributed, so MTTR is defined
  // and counts from the warning.
  ASSERT_TRUE(wave.has_mttr());
  EXPECT_GT(wave.mttr, 0.0);
  EXPECT_GT(wave.migrations, 0u);
  // The overloaded mesh exercises the full latency arc.
  EXPECT_GT(card.help_to_pledge.stats().count(), 0u);
  EXPECT_GT(card.help_to_migration.stats().count(), 0u);
}

TEST(Scorecard, JsonIsByteIdenticalAcrossRepeatedRuns) {
  const std::vector<ParsedEvent> first = traced_run();
  const std::vector<ParsedEvent> second = traced_run();
  const std::string json_a = render_scorecard_json(build_scorecard(first));
  const std::string json_b = render_scorecard_json(build_scorecard(second));
  EXPECT_EQ(json_a, json_b);
  // Sanity: the render is substantial, not a trivially-equal stub.
  EXPECT_GT(json_a.size(), 200u);
  EXPECT_NE(json_a.find("\"attacks\""), std::string::npos);
}

TEST(Scorecard, FlightDumpAndJsonlAgree) {
  const std::vector<ParsedEvent> jsonl_events = traced_run();

  const std::string path = ::testing::TempDir() + "scorecard_flight.bin";
  FlightRecorder recorder(1 << 20);
  {
    experiment::Simulation sim(attack_scenario());
    sim.set_trace_sink(&recorder.ring(0));
    sim.run();
    ASSERT_TRUE(recorder.dump(path));
  }
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(render_scorecard_json(build_scorecard(jsonl_events)),
            render_scorecard_json(build_scorecard(dump.events)));
}

TEST(Scorecard, ByteIdenticalAcrossSweepJobCounts) {
  // A sweep traced through per-run flight dumps must yield the same
  // scorecards whether the runs execute serially or on worker threads.
  const auto scorecards_with_jobs = [&](unsigned jobs) {
    std::vector<std::string> paths;
    experiment::SweepOptions options;
    options.protocols = {proto::ProtocolKind::kRealtor};
    options.lambdas = {12.0};
    options.replications = 2;
    options.jobs = jobs;
    std::mutex mu;
    options.make_trace_sink =
        [&](const experiment::RunId& id) -> std::unique_ptr<TraceSink> {
      const std::string path = ::testing::TempDir() + "scorecard_jobs" +
                               std::to_string(jobs) + "_rep" +
                               std::to_string(id.rep) + ".bin";
      {
        const std::scoped_lock lock(mu);
        paths.push_back(path);
      }
      return std::make_unique<FlightDumpSink>(path, 1 << 20);
    };
    experiment::run_sweep(attack_scenario(), options);

    std::sort(paths.begin(), paths.end());
    std::vector<std::string> rendered;
    for (const std::string& path : paths) {
      FlightDump dump;
      std::string error;
      EXPECT_TRUE(load_flight_file(path, dump, &error)) << error;
      rendered.push_back(render_scorecard_json(build_scorecard(dump.events)));
      std::remove(path.c_str());
    }
    return rendered;
  };

  const std::vector<std::string> serial = scorecards_with_jobs(1);
  const std::vector<std::string> parallel = scorecards_with_jobs(4);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial, parallel);
}

TEST(Scorecard, FlightDumpPassesTheInvariantChecker) {
  const std::string path = ::testing::TempDir() + "scorecard_check.bin";
  FlightRecorder recorder(1 << 20);
  {
    experiment::Simulation sim(attack_scenario());
    sim.set_trace_sink(&recorder.ring(0));
    sim.run();
    ASSERT_TRUE(recorder.dump(path));
  }
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  std::remove(path.c_str());

  const std::vector<Violation> violations = check_invariants(dump.events);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].detail);
}

}  // namespace
}  // namespace realtor::obs
