#include "experiment/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace realtor::experiment {
namespace {

ScenarioConfig report_config() {
  ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = 8.0;
  config.duration = 150.0;
  config.timeline_interval = 50.0;
  config.seed = 9;
  return config;
}

TEST(Report, SummaryTableCoversHeadlineMetrics) {
  Simulation sim(report_config());
  sim.run();
  const Table table = summary_table(sim.metrics());
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  for (const char* key :
       {"tasks generated", "admission probability", "migration rate",
        "completed", "overhead units"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST(Report, SummaryOmitsInactiveSections) {
  Simulation sim(report_config());
  sim.run();
  std::ostringstream os;
  summary_table(sim.metrics()).print(os);
  const std::string text = os.str();
  // No attacks, no federation, no elusiveness in this run.
  EXPECT_EQ(text.find("evacuation"), std::string::npos);
  EXPECT_EQ(text.find("escalations"), std::string::npos);
  EXPECT_EQ(text.find("elusive"), std::string::npos);
}

TEST(Report, LedgerTableTotalsMatchMetrics) {
  Simulation sim(report_config());
  sim.run();
  const Table table = ledger_table(sim.metrics());
  // Last row is TOTAL; its cost column equals the ledger total.
  const std::size_t last = table.num_rows() - 1;
  EXPECT_EQ(table.at(last, 0), "TOTAL");
  EXPECT_NEAR(std::stod(table.at(last, 2)), sim.metrics().ledger.total_cost(),
              0.1);
}

TEST(Report, PerNodeTableHasOneRowPerNode) {
  Simulation sim(report_config());
  sim.run();
  const Table table = per_node_table(sim);
  EXPECT_EQ(table.num_rows(), 25u);
  EXPECT_EQ(table.at(0, 1), "yes");  // all alive
}

TEST(Report, TimelineTableMatchesSamples) {
  Simulation sim(report_config());
  sim.run();
  const Table table = timeline_table(sim);
  EXPECT_EQ(table.num_rows(), sim.timeline().size());
  EXPECT_EQ(table.num_rows(), 3u);  // 150s / 50s
}

TEST(Report, PrintReportVerboseIncludesPerNode) {
  Simulation sim(report_config());
  sim.run();
  std::ostringstream os;
  print_report(os, "test run", sim, /*verbose=*/true);
  const std::string text = os.str();
  EXPECT_NE(text.find("== test run =="), std::string::npos);
  EXPECT_NE(text.find("-- message accounting --"), std::string::npos);
  EXPECT_NE(text.find("-- timeline --"), std::string::npos);
  EXPECT_NE(text.find("-- per node --"), std::string::npos);
}

TEST(Report, AttackRunShowsSurvivabilitySection) {
  ScenarioConfig config = report_config();
  AttackWave wave;
  wave.time = 50.0;
  wave.count = 5;
  wave.grace = 1.0;
  wave.outage = 50.0;
  config.attacks = {wave};
  Simulation sim(config);
  sim.run();
  std::ostringstream os;
  summary_table(sim.metrics()).print(os);
  EXPECT_NE(os.str().find("evacuation"), std::string::npos);
}

}  // namespace
}  // namespace realtor::experiment
