// Trace record/replay and the run-timeline probe.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "experiment/simulation.hpp"
#include "trace/workload_csv.hpp"

namespace realtor {
namespace {

std::vector<trace::TraceRecord> sample_trace() {
  auto arrivals = sim::generate_poisson_trace(3, 5.0, 5.0, 25, 100);
  auto records = trace::from_arrivals(arrivals);
  records[0].bandwidth_share = 0.25;
  records[0].min_security = 3;
  return records;
}

TEST(WorkloadCsv, RoundTripsExactly) {
  const auto original = sample_trace();
  std::stringstream buffer;
  trace::save_csv(buffer, original);
  const auto loaded = trace::load_csv(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.records[i].arrival.id, original[i].arrival.id);
    // %.17g formatting round-trips doubles bit-exactly.
    EXPECT_EQ(loaded.records[i].arrival.time, original[i].arrival.time);
    EXPECT_EQ(loaded.records[i].arrival.size_seconds,
              original[i].arrival.size_seconds);
    EXPECT_EQ(loaded.records[i].arrival.node, original[i].arrival.node);
    EXPECT_EQ(loaded.records[i].bandwidth_share, original[i].bandwidth_share);
    EXPECT_EQ(loaded.records[i].min_security, original[i].min_security);
  }
}

TEST(WorkloadCsv, FileRoundTrip) {
  const auto original = sample_trace();
  const std::string path = ::testing::TempDir() + "/realtor_trace_test.csv";
  ASSERT_TRUE(trace::save_csv_file(path, original));
  const auto loaded = trace::load_csv_file(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.records.size(), original.size());
  std::remove(path.c_str());
}

TEST(WorkloadCsv, RejectsBadHeader) {
  std::stringstream buffer("id,time\n1,2\n");
  const auto loaded = trace::load_csv(buffer);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("header"), std::string::npos);
}

TEST(WorkloadCsv, RejectsMalformedRows) {
  const char* header = "id,time,size_seconds,node,bandwidth,min_security\n";
  const struct {
    const char* row;
    const char* what;
  } cases[] = {
      {"x,1.0,5.0,0,0,0\n", "bad id"},
      {"1,abc,5.0,0,0,0\n", "bad time"},
      {"1,1.0,5.0,0,0\n", "expected 6 fields"},
      {"1,1.0,5.0,0,0,0,9\n", "too many fields"},
      {"1,1.0,-5.0,0,0,0\n", "non-positive size"},
      {"1,1.0,5.0,0,0,999\n", "bad security"},
  };
  for (const auto& c : cases) {
    std::stringstream buffer(std::string(header) + c.row);
    const auto loaded = trace::load_csv(buffer);
    EXPECT_FALSE(loaded.ok) << c.row;
    EXPECT_NE(loaded.error.find(c.what), std::string::npos)
        << "got: " << loaded.error;
  }
}

TEST(WorkloadCsv, RejectsUnsortedTimestamps) {
  std::stringstream buffer(
      "id,time,size_seconds,node,bandwidth,min_security\n"
      "0,5.0,1.0,0,0,0\n"
      "1,4.0,1.0,0,0,0\n");
  const auto loaded = trace::load_csv(buffer);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("sorted"), std::string::npos);
}

TEST(WorkloadCsv, RandomGarbageNeverCrashesParser) {
  RngStream rng(77, "csv-fuzz");
  const char charset[] = "0123456789.,-eE+x \t\"';\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = "id,time,size_seconds,node,bandwidth,min_security\n";
    const std::size_t length = rng.uniform_index(200);
    for (std::size_t i = 0; i < length; ++i) {
      input += charset[rng.uniform_index(sizeof(charset) - 1)];
    }
    std::stringstream buffer(input);
    const auto loaded = trace::load_csv(buffer);  // must not crash or hang
    if (!loaded.ok) {
      EXPECT_FALSE(loaded.error.empty());
    }
  }
}

TEST(WorkloadCsv, MissingFileReportsError) {
  const auto loaded = trace::load_csv_file("/nonexistent/trace.csv");
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
}

TEST(TraceReplay, ReproducesLiveRunExactly) {
  experiment::ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = 8.0;
  config.duration = 150.0;
  config.seed = 17;

  experiment::Simulation live(config);
  const auto& live_metrics = live.run();

  // Replay the identical arrival stream through inject().
  auto arrivals = sim::generate_poisson_trace(
      config.seed, config.lambda, config.mean_task_size, 25,
      live_metrics.generated);
  experiment::ScenarioConfig replay_config = config;
  replay_config.external_arrivals = true;
  experiment::Simulation replay(replay_config);
  for (const sim::Arrival& a : arrivals) {
    replay.engine().schedule_at(a.time, [&replay, a] { replay.inject(a); });
  }
  const auto& replay_metrics = replay.run();

  EXPECT_EQ(replay_metrics.generated, live_metrics.generated);
  EXPECT_EQ(replay_metrics.admitted_local, live_metrics.admitted_local);
  EXPECT_EQ(replay_metrics.admitted_migrated, live_metrics.admitted_migrated);
  EXPECT_EQ(replay_metrics.rejected, live_metrics.rejected);
  EXPECT_DOUBLE_EQ(replay_metrics.ledger.total_cost(),
                   live_metrics.ledger.total_cost());
}

TEST(Timeline, SamplesAtConfiguredInterval) {
  experiment::ScenarioConfig config;
  config.lambda = 6.0;
  config.duration = 100.0;
  config.timeline_interval = 10.0;
  config.seed = 5;
  experiment::Simulation sim(config);
  sim.run();
  const auto& timeline = sim.timeline();
  ASSERT_EQ(timeline.size(), 10u);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(timeline[i].time, 10.0 * static_cast<double>(i + 1));
    EXPECT_EQ(timeline[i].alive_nodes, 25u);
  }
  // Cumulative counters are monotone.
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].generated, timeline[i - 1].generated);
    EXPECT_GE(timeline[i].overhead_cost, timeline[i - 1].overhead_cost);
  }
}

TEST(Timeline, CapturesAttackDipAndRecovery) {
  experiment::ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = 5.0;
  config.duration = 300.0;
  config.timeline_interval = 10.0;
  config.seed = 5;
  experiment::AttackWave wave;
  wave.time = 100.0;
  wave.count = 10;
  wave.grace = 1.0;
  wave.outage = 100.0;
  config.attacks = {wave};
  experiment::Simulation sim(config);
  sim.run();
  const auto& timeline = sim.timeline();
  ASSERT_FALSE(timeline.empty());
  bool saw_degraded = false;
  bool recovered = false;
  for (const auto& sample : timeline) {
    if (sample.time > 101.0 && sample.time <= 201.0) {
      EXPECT_EQ(sample.alive_nodes, 15u);
      saw_degraded = true;
    }
    if (sample.time > 210.0) {
      recovered = sample.alive_nodes == 25u;
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(recovered);
}

TEST(Timeline, DisabledByDefault) {
  experiment::ScenarioConfig config;
  config.duration = 50.0;
  experiment::Simulation sim(config);
  sim.run();
  EXPECT_TRUE(sim.timeline().empty());
}

}  // namespace
}  // namespace realtor
