// The live telemetry plane end-to-end: the headline guarantee is that a
// fixed seed produces byte-identical alert firings and exposition
// snapshots no matter how the sweep executes — serial, threaded, or
// warm-start forked children replaying a shared prefix into a fresh
// plane.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "obs/live/live_plane.hpp"
#include "obs/trace.hpp"

namespace realtor::experiment {
namespace {

using obs::EventKind;
using obs::MemorySink;
using obs::TraceEvent;
using obs::live::LiveConfig;
using obs::live::LivePlane;

// Overloaded 5x5 mesh losing half its nodes for good at t=60: admission
// probability over the trailing 50 decisions dips below the default 0.9
// floor shortly after the wave, so the stock admission_low rule fires.
ScenarioConfig alert_scenario() {
  ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.live_cadence = 10.0;
  config.attacks.push_back(AttackWave{60.0, 12, 1.0, 0.0});
  return config;
}

const TraceEvent* find_alert(const MemorySink& sink, EventKind kind) {
  for (const TraceEvent& event : sink.events()) {
    if (event.kind == kind) return &event;
  }
  return nullptr;
}

std::string field_string(const TraceEvent& event, const char* key) {
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    if (std::strcmp(event.fields[i].key, key) == 0) {
      return event.fields[i].s;
    }
  }
  return {};
}

TEST(LivePlane, GoldenAlertFiresAtTheExpectedTick) {
  MemorySink events;
  LiveConfig live;
  live.node_count = 25;
  LivePlane plane(std::move(live));
  ASSERT_TRUE(plane.ok()) << plane.error();
  plane.set_downstream(&events);

  Simulation sim(alert_scenario());
  sim.set_trace_sink(&plane);
  sim.run();

  // 120 s at one tick per 10 s; the t=120 tick doubles as the final one.
  EXPECT_EQ(plane.snapshots(), 12u);
  EXPECT_EQ(plane.alerts_fired(), 1u);
  EXPECT_TRUE(plane.alert_firing("admission_low"));
  EXPECT_FALSE(plane.alert_firing("help_storm"));

  // The firing is an ordinary trace event in the downstream sink, pinned
  // to the first evaluation tick after the post-attack admission window
  // degrades: t=70 for this seed, forever.
  const TraceEvent* firing = find_alert(events, EventKind::kAlertFiring);
  ASSERT_NE(firing, nullptr);
  EXPECT_DOUBLE_EQ(firing->time, 70.0);
  EXPECT_EQ(field_string(*firing, "rule"), "admission_low");
  EXPECT_EQ(field_string(*firing, "signal"), "admission_probability");

  // And the buffered exposition reports the same state.
  EXPECT_NE(plane.exposition().find(
                "realtor_live_alert{rule=\"admission_low\"} 1"),
            std::string::npos);
  EXPECT_NE(plane.exposition().find("realtor_live_alerts_fired_total 1"),
            std::string::npos);
}

TEST(LivePlane, AttachingThePlaneDoesNotPerturbTheRun) {
  const ScenarioConfig config = alert_scenario();
  Simulation bare(config);
  const RunMetrics base = bare.run();

  LivePlane plane(LiveConfig{});
  Simulation observed(config);
  observed.set_trace_sink(&plane);
  const RunMetrics traced = observed.run();

  EXPECT_EQ(base.generated, traced.generated);
  EXPECT_EQ(base.admitted_local, traced.admitted_local);
  EXPECT_EQ(base.admitted_migrated, traced.admitted_migrated);
  EXPECT_EQ(base.rejected, traced.rejected);
  EXPECT_EQ(base.completed, traced.completed);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Runs the alert scenario as a two-replication sweep under the given
// executor and returns the bytes of every per-run exposition file.
std::vector<std::string> sweep_expositions(const std::string& prefix,
                                           unsigned jobs, SweepExec exec) {
  ScenarioConfig base = alert_scenario();
  SweepOptions options;
  options.lambdas = {12.0};
  options.protocols = {proto::ProtocolKind::kRealtor};
  options.replications = 2;
  options.jobs = jobs;
  options.exec = exec;

  RunSinkOptions sinks;
  sinks.live_prefix = prefix;
  sinks.live_nodes = 25;
  options.make_trace_sink = make_run_sink_factory(sinks);
  run_sweep(base, options);

  std::vector<std::string> expositions;
  for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
    const std::string path = prefix + ".realtor.lambda" +
                             format_double(12.0, 3) + ".rep" +
                             std::to_string(rep) + ".prom";
    std::string text = read_file(path);
    EXPECT_FALSE(text.empty()) << path;
    expositions.push_back(std::move(text));
    std::remove(path.c_str());
  }
  return expositions;
}

TEST(LivePlane, ExpositionIsByteIdenticalAcrossJobsAndExec) {
  const std::string dir = ::testing::TempDir();
  const auto serial =
      sweep_expositions(dir + "live_serial", 1, SweepExec::kThread);
  const auto threaded =
      sweep_expositions(dir + "live_jobs4", 4, SweepExec::kThread);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "rep " << i << " diverged";
  }
  // The snapshot history must contain the golden firing, not just match.
  EXPECT_NE(serial[0].find("realtor_live_alert{rule=\"admission_low\"} 1"),
            std::string::npos);

  if (fork_exec_supported()) {
    const auto forked =
        sweep_expositions(dir + "live_fork", 4, SweepExec::kFork);
    ASSERT_EQ(serial.size(), forked.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], forked[i]) << "rep " << i << " diverged (fork)";
    }
  }
}

}  // namespace
}  // namespace realtor::experiment
