// Scale smoke: a 50x50 torus (2500 nodes) run must stay inside tight
// wall-clock and memory envelopes — the regression tripwire for the
// zero-copy fan-out + lazy-shortest-paths data path — and a sweep over it
// must be byte-identical between the serial and multi-worker executors.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"

namespace realtor::experiment {
namespace {

ScenarioConfig torus_config() {
  ScenarioConfig config;
  config.topology.kind = TopologyKind::kTorus;
  config.topology.width = 50;
  config.topology.height = 50;
  config.fixed_unicast_cost.reset();  // 4 is mesh-5x5-specific
  config.protocol_kind = proto::ProtocolKind::kPurePush;
  config.duration = 5.0;  // ~12 push floods of 2500 nodes each
  config.lambda = 100.0;
  config.seed = 11;
  return config;
}

long max_rss_kib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

TEST(ScaleSmoke, TorusFiftyByFiftyRunsFastAndLean) {
  const auto start = std::chrono::steady_clock::now();
  Simulation sim(torus_config());
  const RunMetrics& metrics = sim.run();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_GT(metrics.generated, 0u);
  EXPECT_GT(metrics.ledger.total_sends(), 0u);
  // Pre-change this configuration took tens of seconds (per-destination
  // events + eager all-pairs BFS on every liveness change). The envelope
  // is ~20x the observed post-change time (~0.15 s) to stay CI-safe while
  // still catching an accidental return to the quadratic path.
  EXPECT_LT(elapsed, 4.0) << "2500-node run regressed to " << elapsed << " s";
  // Peak RSS stays small: CSR adjacency + a bounded BFS row cache are a
  // few MiB at N=2500; the old dense all-pairs matrix alone was ~25 MiB.
  // Generous bound (includes gtest + allocator slack).
  EXPECT_LT(max_rss_kib(), 512L * 1024L) << "peak RSS " << max_rss_kib()
                                         << " KiB";
}

std::string sweep_fingerprint(const std::vector<SweepCell>& cells) {
  std::ostringstream out;
  out.precision(17);
  for (const SweepCell& cell : cells) {
    out << static_cast<int>(cell.kind) << ':' << cell.lambda << ':'
        << cell.summed.generated << ':' << cell.summed.completed << ':'
        << cell.summed.admitted_migrated << ':' << cell.summed.rejected << ':'
        << cell.summed.ledger.total_sends() << ':'
        << cell.summed.ledger.total_cost() << ':'
        << cell.admission_probability.mean() << ':'
        << cell.total_messages.mean() << '\n';
  }
  return out.str();
}

TEST(ScaleSmoke, SweepIsByteIdenticalAcrossJobCounts) {
  ScenarioConfig base = torus_config();
  base.duration = 3.0;

  SweepOptions options;
  options.lambdas = {50.0, 100.0};
  options.protocols = {proto::ProtocolKind::kPurePush,
                       proto::ProtocolKind::kRealtor};
  options.replications = 2;

  options.jobs = 1;
  const std::string serial = sweep_fingerprint(run_sweep(base, options));
  options.jobs = 4;
  const std::string parallel = sweep_fingerprint(run_sweep(base, options));
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

}  // namespace
}  // namespace realtor::experiment
