// Metamorphic properties of the whole simulation: directional changes in
// resources, load, and retry budget must move the admission probability
// the right way (up to a small tolerance — the protocols are stochastic
// in their tie-breaks even on a fixed workload).
#include <gtest/gtest.h>

#include "experiment/simulation.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {
namespace {

double admission(proto::ProtocolKind kind, double lambda, double queue,
                 std::uint32_t tries, NodeId side = 5,
                 SimTime duration = 300.0) {
  ScenarioConfig config;
  config.protocol_kind = kind;
  config.lambda = lambda;
  config.queue_capacity = queue;
  config.migration.max_tries = tries;
  config.topology.width = side;
  config.topology.height = side;
  if (side != 5) config.fixed_unicast_cost.reset();
  config.duration = duration;
  config.seed = 23;
  Simulation sim(config);
  return sim.run().admission_probability();
}

class Metamorphic : public ::testing::TestWithParam<proto::ProtocolKind> {};

TEST_P(Metamorphic, LargerQueuesNeverHurt) {
  const double small = admission(GetParam(), 9.0, 100.0, 1);
  const double large = admission(GetParam(), 9.0, 200.0, 1);
  EXPECT_GE(large, small - 0.01);
  EXPECT_GT(large, small);  // at 180% load the extra buffer must show
}

TEST_P(Metamorphic, HigherLoadNeverHelps) {
  const double light = admission(GetParam(), 6.0, 100.0, 1);
  const double heavy = admission(GetParam(), 10.0, 100.0, 1);
  EXPECT_LE(heavy, light + 0.01);
  EXPECT_LT(heavy, light);
}

TEST_P(Metamorphic, MoreCapacityNodesHelpAtFixedTotalLoad) {
  const double small_mesh = admission(GetParam(), 9.0, 100.0, 1, 5);
  const double large_mesh = admission(GetParam(), 9.0, 100.0, 1, 6);
  EXPECT_GT(large_mesh, small_mesh);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Metamorphic,
                         ::testing::ValuesIn(proto::kAllProtocolKinds),
                         [](const auto& tpi) {
                           std::string name = proto::to_string(tpi.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(MetamorphicRetry, MoreTriesNeverHurtRealtor) {
  const double one = admission(proto::ProtocolKind::kRealtor, 9.0, 100.0, 1);
  const double three = admission(proto::ProtocolKind::kRealtor, 9.0, 100.0, 3);
  EXPECT_GE(three, one - 0.005);
}

TEST(MetamorphicRetry, RetryBudgetIsActuallyExercisedUnderOverload) {
  // Retries are not strictly monotone in admission (an extra admission can
  // displace a later, better-fitting task), but the budget must be used
  // and must never hurt beyond noise.
  ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = 11.0;
  config.duration = 300.0;
  config.seed = 23;
  config.migration.max_tries = 1;
  Simulation one_try(config);
  const RunMetrics m1 = one_try.run();
  config.migration.max_tries = 5;
  Simulation five_tries(config);
  const RunMetrics m5 = five_tries.run();
  EXPECT_GT(m5.migration_attempts, m1.migration_attempts);
  EXPECT_GE(m5.admission_probability(), m1.admission_probability() - 0.01);
}

TEST(MetamorphicWarmup, WarmupCountsOnlyTheTail) {
  ScenarioConfig config;
  config.lambda = 5.0;
  config.duration = 200.0;
  config.seed = 23;
  Simulation whole(config);
  const std::uint64_t all = whole.run().generated;
  config.warmup = 100.0;
  Simulation tail_only(config);
  const std::uint64_t tail = tail_only.run().generated;
  EXPECT_LT(tail, all);
  // Roughly half the arrivals land in the second half.
  EXPECT_NEAR(static_cast<double>(tail), static_cast<double>(all) / 2.0,
              static_cast<double>(all) * 0.15);
}

TEST(MetamorphicDelay, SmallNetworkDelayBarelyMoves) {
  ScenarioConfig base;
  base.protocol_kind = proto::ProtocolKind::kRealtor;
  base.lambda = 8.0;
  base.duration = 300.0;
  base.seed = 23;
  Simulation instant(base);
  const double p0 = instant.run().admission_probability();
  base.network_delay = 0.01;  // 10 ms on 5 s tasks: negligible
  Simulation delayed(base);
  const double p1 = delayed.run().admission_probability();
  EXPECT_NEAR(p0, p1, 0.02);
}

}  // namespace
}  // namespace realtor::experiment
