#include "experiment/simulation.hpp"

#include <gtest/gtest.h>

#include "proto/factory.hpp"

namespace realtor::experiment {
namespace {

ScenarioConfig small_config(proto::ProtocolKind kind, double lambda,
                            SimTime duration = 100.0) {
  ScenarioConfig c;
  c.protocol_kind = kind;
  c.lambda = lambda;
  c.duration = duration;
  c.seed = 11;
  return c;
}

class SimulationConservation
    : public ::testing::TestWithParam<proto::ProtocolKind> {};

TEST_P(SimulationConservation, TaskAccountingBalances) {
  Simulation sim(small_config(GetParam(), 8.0, 150.0));
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.generated, 0u);
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected +
                             m.arrivals_at_dead_nodes);
  EXPECT_EQ(m.arrivals_at_dead_nodes, 0u);  // no attacks configured
  // Admitted work is either completed or still queued; completion count
  // can never exceed admissions.
  EXPECT_LE(m.completed, m.admitted_total());
}

TEST_P(SimulationConservation, LightLoadAdmitsEverythingSilently) {
  Simulation sim(small_config(GetParam(), 1.0));
  const RunMetrics& m = sim.run();
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_DOUBLE_EQ(m.admission_probability(), 1.0);
  EXPECT_EQ(m.admitted_migrated, 0u);  // nothing ever fills at lambda=1
}

TEST_P(SimulationConservation, OverloadRejectsSome) {
  Simulation sim(small_config(GetParam(), 12.0, 300.0));
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.rejected, 0u);
  EXPECT_LT(m.admission_probability(), 1.0);
  EXPECT_GT(m.admission_probability(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimulationConservation,
                         ::testing::ValuesIn(proto::kAllProtocolKinds),
                         [](const auto& tpi) {
                           std::string name = proto::to_string(tpi.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Simulation, DeterministicGivenSeed) {
  const auto config = small_config(proto::ProtocolKind::kRealtor, 7.0);
  Simulation a(config), b(config);
  const RunMetrics& ma = a.run();
  const RunMetrics& mb = b.run();
  EXPECT_EQ(ma.generated, mb.generated);
  EXPECT_EQ(ma.admitted_local, mb.admitted_local);
  EXPECT_EQ(ma.admitted_migrated, mb.admitted_migrated);
  EXPECT_EQ(ma.rejected, mb.rejected);
  EXPECT_DOUBLE_EQ(ma.ledger.total_cost(), mb.ledger.total_cost());
}

TEST(Simulation, SeedChangesWorkload) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 7.0);
  Simulation a(config);
  config.seed = 12;
  Simulation b(config);
  EXPECT_NE(a.run().generated, b.run().generated);
}

TEST(Simulation, WorkloadIdenticalAcrossProtocols) {
  // Common random numbers: the generated task stream must not depend on
  // the protocol under test.
  std::vector<std::uint64_t> generated;
  for (const auto kind : proto::kAllProtocolKinds) {
    Simulation sim(small_config(kind, 6.0));
    generated.push_back(sim.run().generated);
  }
  for (const auto g : generated) {
    EXPECT_EQ(g, generated.front());
  }
}

TEST(Simulation, PurePushMessageCostMatchesClosedForm) {
  // With 25 nodes advertising every second for T seconds on a 40-link
  // mesh, the flood cost is exactly 25 * floor(T) * 40 when no nodes die.
  auto config = small_config(proto::ProtocolKind::kPurePush, 0.1, 100.0);
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_DOUBLE_EQ(m.ledger.cost(net::MessageKind::kPushAdvert),
                   25.0 * 100.0 * 40.0);
  EXPECT_EQ(m.ledger.sends(net::MessageKind::kPushAdvert), 2500u);
}

TEST(Simulation, PullSendsNothingBelowThreshold) {
  auto config = small_config(proto::ProtocolKind::kPurePull, 0.5, 100.0);
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_DOUBLE_EQ(m.ledger.total_cost(), 0.0);
}

TEST(Simulation, MigratedTasksCompleteSomewhere) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 9.0, 200.0);
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.admitted_migrated, 0u);
  // Migration cost recorded for every successful migration.
  EXPECT_EQ(m.ledger.sends(net::MessageKind::kMigration), m.admitted_migrated);
}

TEST(Simulation, WarmupResetsCounters) {
  auto with_warmup = small_config(proto::ProtocolKind::kRealtor, 5.0, 100.0);
  with_warmup.warmup = 50.0;
  Simulation a(with_warmup);
  const RunMetrics& mw = a.run();

  auto without = small_config(proto::ProtocolKind::kRealtor, 5.0, 100.0);
  Simulation b(without);
  const RunMetrics& mf = b.run();

  EXPECT_LT(mw.generated, mf.generated);
  EXPECT_GT(mw.generated, 0u);
}

TEST(Simulation, MeanOccupancyRisesWithLoad) {
  Simulation light(small_config(proto::ProtocolKind::kRealtor, 1.0, 200.0));
  Simulation heavy(small_config(proto::ProtocolKind::kRealtor, 9.0, 200.0));
  const double occ_light = light.run().mean_occupancy;
  const double occ_heavy = heavy.run().mean_occupancy;
  EXPECT_LT(occ_light, occ_heavy);
  EXPECT_GT(occ_heavy, 0.5);
}

TEST(Simulation, ResponseTimeRecordedForCompletions) {
  Simulation sim(small_config(proto::ProtocolKind::kRealtor, 4.0, 200.0));
  const RunMetrics& m = sim.run();
  EXPECT_EQ(m.response_time.count(), m.completed);
  EXPECT_GT(m.response_time.mean(), 0.0);
}

TEST(Simulation, AlternativeTopologiesRun) {
  for (const TopologyKind kind :
       {TopologyKind::kTorus, TopologyKind::kRing, TopologyKind::kStar,
        TopologyKind::kComplete, TopologyKind::kRandom}) {
    ScenarioConfig config = small_config(proto::ProtocolKind::kRealtor, 5.0,
                                         50.0);
    config.topology.kind = kind;
    config.topology.width = 4;
    config.topology.height = 4;
    config.topology.nodes = 16;
    config.topology.links = 24;
    config.fixed_unicast_cost.reset();  // use computed average path length
    Simulation sim(config);
    const RunMetrics& m = sim.run();
    EXPECT_GT(m.generated, 0u);
    EXPECT_EQ(m.generated,
              m.admitted_local + m.admitted_migrated + m.rejected);
  }
}

TEST(Simulation, NetworkDelayModeStillConserves) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 8.0, 150.0);
  config.network_delay = 0.05;
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(SimulationMultiResource, ConservationStillHolds) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 8.0, 200.0);
  config.multi_resource.enabled = true;
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected);
  EXPECT_GT(m.generated, 0u);
}

TEST(SimulationMultiResource, SecureTasksMigrateToClearedHosts) {
  // At light CPU load, rejections can only come from the security / NIC
  // dimensions; REALTOR must still find cleared hosts for most tasks.
  auto config = small_config(proto::ProtocolKind::kRealtor, 3.0, 300.0);
  config.multi_resource.enabled = true;
  config.multi_resource.secure_task_fraction = 0.5;
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  // Security refusals at the origin force migrations even though queues
  // have room.
  EXPECT_GT(m.admitted_migrated, 0u);
  EXPECT_GT(m.admission_probability(), 0.7);
}

TEST(SimulationMultiResource, FootnoteThreeSimilarResults) {
  // §5 footnote 3: "More general resource scenarios ... would give
  // similar results." With light extra demands the admission curve must
  // stay close to the CPU-only run on the same workload.
  auto cpu_only = small_config(proto::ProtocolKind::kRealtor, 7.0, 300.0);
  auto multi = cpu_only;
  multi.multi_resource.enabled = true;
  multi.multi_resource.mean_bandwidth_share = 0.02;
  multi.multi_resource.secure_task_fraction = 0.1;
  Simulation a(cpu_only), b(multi);
  const double p_cpu = a.run().admission_probability();
  const double p_multi = b.run().admission_probability();
  EXPECT_NEAR(p_cpu, p_multi, 0.05);
}

TEST(SimulationMultiResource, TighterResourcesLowerAdmission) {
  auto loose = small_config(proto::ProtocolKind::kRealtor, 7.0, 300.0);
  loose.multi_resource.enabled = true;
  loose.multi_resource.mean_bandwidth_share = 0.02;
  auto tight = loose;
  tight.multi_resource.mean_bandwidth_share = 0.25;  // NIC becomes binding
  Simulation a(loose), b(tight);
  EXPECT_GT(a.run().admission_probability(),
            b.run().admission_probability());
}

TEST(SimulationElusiveness, RelocationsHappenAndConserve) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 6.0, 300.0);
  config.elusiveness.enabled = true;
  config.elusiveness.period = 10.0;
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.elusive_moves, 0u);
  // Conservation of arrivals is untouched by the extra hops.
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected);
  // Everything admitted still completes or remains queued — no task is
  // lost in a relocation.
  EXPECT_LE(m.completed, m.admitted_total());
}

TEST(SimulationElusiveness, HotPotatoCostsOverheadNotAdmission) {
  auto base = small_config(proto::ProtocolKind::kRealtor, 6.0, 300.0);
  auto elusive = base;
  elusive.elusiveness.enabled = true;
  elusive.elusiveness.period = 5.0;
  Simulation a(base), b(elusive);
  const RunMetrics& mb = a.run();
  const RunMetrics& me = b.run();
  EXPECT_GT(me.ledger.cost(net::MessageKind::kMigration),
            mb.ledger.cost(net::MessageKind::kMigration));
  EXPECT_NEAR(me.admission_probability(), mb.admission_probability(), 0.03);
}

TEST(SimulationElusiveness, MovedComponentsCarryHopCounts) {
  auto config = small_config(proto::ProtocolKind::kRealtor, 6.0, 200.0);
  config.elusiveness.enabled = true;
  config.elusiveness.period = 5.0;
  Simulation sim(config);
  const RunMetrics& m = sim.run();
  // Each elusive move is a real migration through admission control.
  EXPECT_EQ(m.ledger.sends(net::MessageKind::kMigration),
            m.admitted_migrated + m.elusive_moves);
}

TEST(Simulation, ExactHopCostModeChargesLessThanPinnedAverage) {
  // On the 5x5 mesh the pinned paper cost (4) exceeds the true mean
  // (10/3), so exact-hop accounting must come out lower for the same run.
  auto paper = small_config(proto::ProtocolKind::kPurePull, 9.0, 200.0);
  auto exact = paper;
  exact.cost_mode = net::CostMode::kExactHops;
  exact.fixed_unicast_cost.reset();
  const double paper_cost = Simulation(paper).run().ledger.total_cost();
  const double exact_cost = Simulation(exact).run().ledger.total_cost();
  EXPECT_GT(paper_cost, 0.0);
  EXPECT_LT(exact_cost, paper_cost);
}

}  // namespace
}  // namespace realtor::experiment
