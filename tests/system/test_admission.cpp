#include "admission/admission_controller.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/cost_model.hpp"
#include "proto/discovery_protocol.hpp"
#include "sim/engine.hpp"

namespace realtor::admission {
namespace {

// Minimal protocol stub returning a scripted candidate list and recording
// feedback.
class StubProtocol final : public proto::DiscoveryProtocol {
 public:
  StubProtocol(NodeId self, const proto::ProtocolConfig& config,
               proto::ProtocolEnv env)
      : DiscoveryProtocol(self, config, std::move(env)) {}

  const char* name() const override { return "stub"; }
  void on_status_change(double) override {}
  void on_task_arrival(double) override {}
  void on_message(NodeId, const proto::Message&) override {}
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const proto::CandidateQuery& query) override {
    last_query = query;
    return candidates;
  }
  void on_migration_result(NodeId target, double, bool success) override {
    feedback.emplace_back(target, success);
  }

  std::vector<NodeId> candidates;
  std::vector<std::pair<NodeId, bool>> feedback;
  proto::CandidateQuery last_query;
};

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : topo_(net::make_mesh(3, 3)),
        cost_(topo_, net::CostMode::kPaperAverage, 4.0) {
    for (NodeId id = 0; id < topo_.num_nodes(); ++id) {
      hosts_.push_back(std::make_unique<node::Host>(engine_, id, 10.0));
    }
    proto::ProtocolEnv env;
    env.engine = &engine_;
    env.topology = &topo_;
    env.transport = nullptr;  // stub never sends
    env.local_occupancy = [] { return 0.0; };
    env.seed = 1;
    stub_ = std::make_unique<StubProtocol>(0, proto::ProtocolConfig{},
                                           std::move(env));
  }

  AdmissionController make_controller(const MigrationPolicy& policy) {
    return AdmissionController(
        policy, topo_, cost_, ledger_,
        [this](NodeId id) { return hosts_[id].get(); });
  }

  node::Task make_task(double size) {
    node::Task t;
    t.id = 1;
    t.size_seconds = size;
    t.origin = 0;
    return t;
  }

  sim::Engine engine_;
  net::Topology topo_;
  net::CostModel cost_;
  net::MessageLedger ledger_;
  std::vector<std::unique_ptr<node::Host>> hosts_;
  std::unique_ptr<StubProtocol> stub_;
};

TEST_F(AdmissionTest, NoCandidatesMeansRejection) {
  auto controller = make_controller(MigrationPolicy{});
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_FALSE(outcome.admitted);
  EXPECT_EQ(outcome.attempts, 0u);
  EXPECT_EQ(controller.no_candidate(), 1u);
  EXPECT_DOUBLE_EQ(ledger_.total_cost(), 0.0);
}

TEST_F(AdmissionTest, MigratesToFirstViableCandidate) {
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.target, 3u);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_DOUBLE_EQ(hosts_[3]->backlog_seconds(), 5.0);
  // Negotiation: 2 unicasts x 4; migration payload: 1 x 4.
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kNegotiation), 8.0);
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kMigration), 4.0);
  ASSERT_EQ(stub_->feedback.size(), 1u);
  EXPECT_TRUE(stub_->feedback[0].second);
}

TEST_F(AdmissionTest, OneTryPolicyStopsAfterFirstAbort) {
  // Paper §5: "only a one-time migration try to the best candidate".
  hosts_[3]->try_enqueue(make_task(10.0));  // fill the best candidate
  stub_->candidates = {3, 4};
  auto controller = make_controller(MigrationPolicy{});
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_FALSE(outcome.admitted);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(controller.aborted(), 1u);
  EXPECT_DOUBLE_EQ(hosts_[4]->backlog_seconds(), 0.0);  // never tried
  ASSERT_EQ(stub_->feedback.size(), 1u);
  EXPECT_FALSE(stub_->feedback[0].second);
}

TEST_F(AdmissionTest, RetryBudgetTriesNextCandidate) {
  // §3: "migration is aborted and the next node in REALTOR's list is tried".
  hosts_[3]->try_enqueue(make_task(10.0));
  stub_->candidates = {3, 4};
  MigrationPolicy policy;
  policy.max_tries = 2;
  auto controller = make_controller(policy);
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.target, 4u);
  EXPECT_EQ(outcome.attempts, 2u);
  // Both negotiations charged.
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kNegotiation), 16.0);
}

TEST_F(AdmissionTest, DeadTargetChargedAndAborted) {
  topo_.set_alive(3, false);
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_FALSE(outcome.admitted);
  // The failed negotiation round-trip is still paid for.
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kNegotiation), 8.0);
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kMigration), 0.0);
}

TEST_F(AdmissionTest, SkipsSelfInCandidateList) {
  stub_->candidates = {0, 3};  // degenerate: protocol offered the origin
  MigrationPolicy policy;
  policy.max_tries = 1;
  auto controller = make_controller(policy);
  const auto outcome = controller.try_migrate(make_task(5.0), 0, *stub_);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.target, 3u);
  EXPECT_EQ(outcome.attempts, 1u);  // self does not consume the budget
}

TEST_F(AdmissionTest, MigratedTaskCarriesIncrementedHopCount) {
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  controller.try_migrate(make_task(5.0), 0, *stub_);
  std::vector<node::Task> drained = hosts_[3]->drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].migrations, 1u);
}

TEST_F(AdmissionTest, QueryCarriesTaskSecurityRequirement) {
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  node::Task task = make_task(5.0);
  task.min_security = 3;
  const auto outcome = controller.try_migrate(task, 0, *stub_);
  EXPECT_TRUE(outcome.admitted);  // stub hosts are unrestricted (255)
  EXPECT_EQ(stub_->last_query.min_security, 3);
}

TEST_F(AdmissionTest, SecureTaskRefusedByUnclearedHost) {
  // Replace host 3 with a low-clearance host; the negotiation is charged
  // and aborted.
  node::HostResources low;
  low.security_level = 1;
  hosts_[3] = std::make_unique<node::Host>(engine_, 3, 10.0, low);
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  node::Task task = make_task(5.0);
  task.min_security = 2;
  const auto outcome = controller.try_migrate(task, 0, *stub_);
  EXPECT_FALSE(outcome.admitted);
  EXPECT_EQ(controller.aborted(), 1u);
}

TEST_F(AdmissionTest, CountersAccumulateAcrossCalls) {
  stub_->candidates = {3};
  auto controller = make_controller(MigrationPolicy{});
  controller.try_migrate(make_task(4.0), 0, *stub_);
  controller.try_migrate(make_task(4.0), 0, *stub_);
  controller.try_migrate(make_task(4.0), 0, *stub_);  // 3rd does not fit (12>10)
  EXPECT_EQ(controller.migrations(), 2u);
  EXPECT_EQ(controller.aborted(), 1u);
  EXPECT_EQ(controller.attempts(), 3u);
}

}  // namespace
}  // namespace realtor::admission
