// Inter-neighbor-group discovery (§7 future work extension).
#include <gtest/gtest.h>

#include "experiment/simulation.hpp"
#include "federation/group_map.hpp"

namespace realtor {
namespace {

using federation::GroupMap;

TEST(GroupMap, MeshBlocksPartitionCorrectly) {
  // 10x10 mesh in 5x5 blocks -> 4 groups of 25.
  const GroupMap map = GroupMap::mesh_blocks(10, 10, 5, 5);
  EXPECT_EQ(map.group_count(), 4u);
  EXPECT_EQ(map.members(0).size(), 25u);
  EXPECT_EQ(map.group_of(0), 0u);    // top-left corner
  EXPECT_EQ(map.group_of(9), 1u);    // top-right corner
  EXPECT_EQ(map.group_of(90), 2u);   // bottom-left corner
  EXPECT_EQ(map.group_of(99), 3u);   // bottom-right corner
  EXPECT_EQ(map.group_of(44), 0u);   // (4,4) inside the first block
  EXPECT_EQ(map.group_of(45), 1u);   // (5,4) inside the second block
}

TEST(GroupMap, ChunksPartition) {
  const GroupMap map = GroupMap::chunks(10, 4);
  EXPECT_EQ(map.group_count(), 3u);
  EXPECT_EQ(map.members(0).size(), 4u);
  EXPECT_EQ(map.members(2).size(), 2u);  // remainder group
  EXPECT_EQ(map.group_of(7), 1u);
}

TEST(GroupMap, AdjacencyOnMesh) {
  const auto topo = net::make_mesh(10, 10);
  const GroupMap map = GroupMap::mesh_blocks(10, 10, 5, 5);
  // In a 2x2 block grid every group touches the two orthogonal neighbors
  // but not the diagonal one.
  EXPECT_EQ(map.adjacent_groups(0, topo),
            (std::vector<federation::GroupId>{1, 2}));
  EXPECT_EQ(map.adjacent_groups(3, topo),
            (std::vector<federation::GroupId>{1, 2}));
}

TEST(GroupMap, IntraGroupLinksCountOnlyInternalEdges) {
  const auto topo = net::make_mesh(10, 10);
  const GroupMap map = GroupMap::mesh_blocks(10, 10, 5, 5);
  // A 5x5 block has 40 internal links (same as the paper's mesh).
  for (federation::GroupId g = 0; g < 4; ++g) {
    EXPECT_EQ(map.intra_group_alive_links(g, topo), 40u);
  }
  // Sanity: 4 blocks x 40 + 2x10 crossing links = 180 total mesh links.
  EXPECT_EQ(topo.num_links(), 180u);
}

TEST(GroupMap, IntraGroupLinksRespectLiveness) {
  auto topo = net::make_mesh(10, 10);
  const GroupMap map = GroupMap::mesh_blocks(10, 10, 5, 5);
  topo.set_alive(0, false);  // corner node: 2 internal links
  EXPECT_EQ(map.intra_group_alive_links(0, topo), 38u);
}

TEST(GroupMap, GatewaySurvivesFailures) {
  auto topo = net::make_mesh(10, 10);
  const GroupMap map = GroupMap::mesh_blocks(10, 10, 5, 5);
  EXPECT_EQ(map.gateway(0, topo), 0u);
  topo.set_alive(0, false);
  EXPECT_EQ(map.gateway(0, topo), 1u);  // next alive member
  for (const NodeId node : map.members(0)) {
    topo.set_alive(node, false);
  }
  EXPECT_EQ(map.gateway(0, topo), kInvalidNode);
}

namespace {

experiment::ScenarioConfig federated_config(double lambda) {
  experiment::ScenarioConfig config;
  config.topology.width = 10;
  config.topology.height = 10;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = lambda;
  config.duration = 200.0;
  config.seed = 13;
  config.fixed_unicast_cost.reset();
  config.federation.enabled = true;
  config.federation.block_width = 5;
  config.federation.block_height = 5;
  return config;
}

}  // namespace

TEST(FederatedSimulation, ConservationHolds) {
  experiment::Simulation sim(federated_config(30.0));
  const auto& m = sim.run();
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected);
  EXPECT_GT(m.generated, 0u);
}

TEST(FederatedSimulation, EscalationsHappenUnderOverload) {
  // 150% system load: groups saturate and must solicit their neighbors.
  experiment::Simulation sim(federated_config(30.0));
  const auto& m = sim.run();
  EXPECT_GT(m.escalations, 0u);
  EXPECT_GT(m.admitted_migrated, 0u);
}

TEST(FederatedSimulation, NoEscalationsAtLightLoad) {
  experiment::Simulation sim(federated_config(4.0));
  const auto& m = sim.run();
  EXPECT_EQ(m.escalations, 0u);
  EXPECT_DOUBLE_EQ(m.admission_probability(), 1.0);
}

TEST(FederatedSimulation, GroupScopedFloodsCostLessThanFlat) {
  // Same workload, flat vs federated overlay: a group flood touches 40
  // links instead of 180, so REALTOR's discovery bill must shrink.
  auto flat = federated_config(30.0);
  flat.federation.enabled = false;
  experiment::Simulation flat_sim(flat);
  experiment::Simulation fed_sim(federated_config(30.0));
  const double flat_cost = flat_sim.run().ledger.cost(net::MessageKind::kHelp);
  const double fed_cost = fed_sim.run().ledger.cost(net::MessageKind::kHelp);
  EXPECT_GT(flat_cost, 0.0);
  EXPECT_LT(fed_cost, flat_cost);
}

TEST(FederatedSimulation, AdmissionStaysCompetitiveWithFlat) {
  auto flat = federated_config(25.0);
  flat.federation.enabled = false;
  experiment::Simulation flat_sim(flat);
  experiment::Simulation fed_sim(federated_config(25.0));
  const double p_flat = flat_sim.run().admission_probability();
  const double p_fed = fed_sim.run().admission_probability();
  EXPECT_GT(p_fed, p_flat - 0.05);
}

TEST(FederatedSimulation, ChunkFallbackForNonMeshTopology) {
  auto config = federated_config(10.0);
  config.topology.kind = experiment::TopologyKind::kRandom;
  config.topology.nodes = 40;
  config.topology.links = 80;
  config.federation.block_width = 0;
  config.federation.block_height = 0;
  config.federation.group_size = 10;
  experiment::Simulation sim(config);
  const auto& m = sim.run();
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(FederatedSimulation, EscalationRateLimited) {
  auto config = federated_config(40.0);  // deep overload, constant misses
  config.federation.escalation_window = 50.0;
  experiment::Simulation sim(config);
  const auto& m = sim.run();
  // 100 nodes x (200s / 50s window) x <=2 adjacent groups = hard cap 800.
  EXPECT_LE(m.escalations, 800u);
  EXPECT_GT(m.escalations, 0u);
}

}  // namespace
}  // namespace realtor
