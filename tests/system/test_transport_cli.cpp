// Direct unit tests of the DES transport (scoping, accounting, hop
// delays) and the CLI flag -> ScenarioConfig mapping.
#include <gtest/gtest.h>

#include <vector>

#include "experiment/cli_config.hpp"
#include "experiment/sim_transport.hpp"
#include "realtor.hpp"  // umbrella header must stay self-contained

namespace realtor::experiment {
namespace {

struct Delivery {
  NodeId to;
  NodeId from;
  SimTime at;
};

class SimTransportTest : public ::testing::Test {
 protected:
  SimTransportTest()
      : topo_(net::make_mesh(5, 5)),
        cost_(topo_, net::CostMode::kPaperAverage, 4.0) {}

  SimTransport make(SimTime delay) {
    return SimTransport(engine_, topo_, cost_, ledger_, delay,
                        [this](NodeId to, NodeId from, const proto::Message&) {
                          deliveries_.push_back(
                              Delivery{to, from, engine_.now()});
                        });
  }

  sim::Engine engine_;
  net::Topology topo_;
  net::CostModel cost_;
  net::MessageLedger ledger_;
  std::vector<Delivery> deliveries_;
};

TEST_F(SimTransportTest, FloodReachesAllAliveAndChargesLinks) {
  auto transport = make(0.0);
  topo_.set_alive(7, false);
  transport.flood(0, proto::Message{proto::HelpMsg{0, 0, 0.5}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 23u);  // 25 - origin - dead node
  // Flood cost: alive links (node 7 is interior-ish with 4 links: 36).
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kHelp), 36.0);
  for (const Delivery& d : deliveries_) {
    EXPECT_NE(d.to, 0u);
    EXPECT_NE(d.to, 7u);
  }
}

TEST_F(SimTransportTest, UnicastChargesPinnedAverage) {
  auto transport = make(0.0);
  transport.unicast(0, 24, proto::Message{proto::PledgeMsg{0, 0.5, 0, 1.0}});
  engine_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].to, 24u);
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kPledge), 4.0);
}

TEST_F(SimTransportTest, HopAccurateDelaysScaleWithDistance) {
  auto transport = make(0.5);
  transport.unicast(0, 1, proto::Message{proto::PledgeMsg{0, 0.5, 0, 1.0}});
  transport.unicast(0, 24, proto::Message{proto::PledgeMsg{0, 0.5, 0, 1.0}});
  engine_.run();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries_[0].at, 0.5);  // 1 hop
  EXPECT_DOUBLE_EQ(deliveries_[1].at, 4.0);  // 8 hops x 0.5
}

TEST_F(SimTransportTest, FloodWithDelayArrivesNearFirst) {
  auto transport = make(0.25);
  transport.flood(12, proto::Message{proto::HelpMsg{12, 0, 0.5}});
  engine_.run();
  ASSERT_EQ(deliveries_.size(), 24u);
  // Deliveries are processed in time order; the first are the center's
  // four 1-hop neighbors, the last a 4-hop corner.
  EXPECT_DOUBLE_EQ(deliveries_.front().at, 0.25);
  EXPECT_DOUBLE_EQ(deliveries_.back().at, 1.0);
}

TEST_F(SimTransportTest, GroupScopedFloodStaysInGroup) {
  net::Topology big = net::make_mesh(10, 10);
  net::CostModel cost(big, net::CostMode::kExactHops);
  const auto groups = federation::GroupMap::mesh_blocks(10, 10, 5, 5);
  SimTransport transport(engine_, big, cost, ledger_, 0.0,
                         [this](NodeId to, NodeId from,
                                const proto::Message&) {
                           deliveries_.push_back(
                               Delivery{to, from, engine_.now()});
                         });
  transport.set_group_map(&groups);
  transport.flood(0, proto::Message{proto::HelpMsg{0, 0, 0.5}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 24u);  // own 5x5 block minus origin
  for (const Delivery& d : deliveries_) {
    EXPECT_EQ(groups.group_of(d.to), 0u);
  }
  // Charged at the block's internal links, not the whole mesh's 180.
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kHelp), 40.0);
}

TEST_F(SimTransportTest, EscalateReachesTargetGroupWithTransitCharge) {
  net::Topology big = net::make_mesh(10, 10);
  net::CostModel cost(big, net::CostMode::kPaperAverage, 4.0);
  const auto groups = federation::GroupMap::mesh_blocks(10, 10, 5, 5);
  SimTransport transport(engine_, big, cost, ledger_, 0.0,
                         [this](NodeId to, NodeId from,
                                const proto::Message&) {
                           deliveries_.push_back(
                               Delivery{to, from, engine_.now()});
                         });
  transport.set_group_map(&groups);
  transport.escalate(0, 3, proto::Message{proto::HelpMsg{0, 0, 1.0}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 25u);  // whole remote block
  for (const Delivery& d : deliveries_) {
    EXPECT_EQ(groups.group_of(d.to), 3u);
  }
  // 2 transit unicasts (2 x 4) + the remote block's 40 internal links.
  EXPECT_DOUBLE_EQ(ledger_.cost(net::MessageKind::kHelp), 48.0);
}

// ----------------------------------------------------------- cli_config

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliConfig, DefaultsMatchPaperSetup) {
  const auto config = scenario_from_flags(make_flags({}));
  EXPECT_EQ(config.topology.kind, TopologyKind::kMesh);
  EXPECT_EQ(config.topology.width, 5u);
  EXPECT_DOUBLE_EQ(config.queue_capacity, 100.0);
  EXPECT_DOUBLE_EQ(config.mean_task_size, 5.0);
  EXPECT_EQ(config.protocol_kind, proto::ProtocolKind::kRealtor);
  EXPECT_EQ(config.migration.max_tries, 1u);
  ASSERT_TRUE(config.fixed_unicast_cost.has_value());
  EXPECT_DOUBLE_EQ(*config.fixed_unicast_cost, 4.0);
}

TEST(CliConfig, ProtocolAcceptsPaperLabels) {
  EXPECT_EQ(scenario_from_flags(make_flags({"--protocol=Push-1"}))
                .protocol_kind,
            proto::ProtocolKind::kPurePush);
  EXPECT_EQ(scenario_from_flags(make_flags({"--protocol=gossip"}))
                .protocol_kind,
            proto::ProtocolKind::kGossip);
}

TEST(CliConfig, NonMeshTopologyDropsPinnedUnicast) {
  const auto config =
      scenario_from_flags(make_flags({"--topology=ring", "--nodes=12"}));
  EXPECT_EQ(config.topology.kind, TopologyKind::kRing);
  EXPECT_EQ(config.topology.nodes, 12u);
  EXPECT_FALSE(config.fixed_unicast_cost.has_value());
}

TEST(CliConfig, AttackSpecParsesMultipleWaves) {
  const auto config = scenario_from_flags(
      make_flags({"--attack=100:5:1:60,200:3:0.5:30"}));
  ASSERT_EQ(config.attacks.size(), 2u);
  EXPECT_DOUBLE_EQ(config.attacks[0].time, 100.0);
  EXPECT_EQ(config.attacks[0].count, 5u);
  EXPECT_DOUBLE_EQ(config.attacks[1].grace, 0.5);
  EXPECT_DOUBLE_EQ(config.attacks[1].outage, 30.0);
}

TEST(CliConfig, MalformedAttackEntriesDropped) {
  const auto config =
      scenario_from_flags(make_flags({"--attack=garbage,50:2:1:10"}));
  ASSERT_EQ(config.attacks.size(), 1u);
  EXPECT_DOUBLE_EQ(config.attacks[0].time, 50.0);
}

TEST(CliConfig, FederationBlockSpec) {
  const auto config = scenario_from_flags(
      make_flags({"--federate=5x5", "--width=10", "--height=10"}));
  EXPECT_TRUE(config.federation.enabled);
  EXPECT_EQ(config.federation.block_width, 5u);
  EXPECT_EQ(config.federation.block_height, 5u);
}

TEST(CliConfig, ExtensionTogglesMapThrough) {
  const auto config = scenario_from_flags(make_flags(
      {"--multires", "--bw-mean=0.2", "--elusive=15", "--timeline=10",
       "--flood=spanning", "--cost=exact", "--tries=3"}));
  EXPECT_TRUE(config.multi_resource.enabled);
  EXPECT_DOUBLE_EQ(config.multi_resource.mean_bandwidth_share, 0.2);
  EXPECT_TRUE(config.elusiveness.enabled);
  EXPECT_DOUBLE_EQ(config.elusiveness.period, 15.0);
  EXPECT_DOUBLE_EQ(config.timeline_interval, 10.0);
  EXPECT_EQ(config.flood_mode, net::FloodMode::kSpanningTree);
  EXPECT_EQ(config.cost_mode, net::CostMode::kExactHops);
  EXPECT_EQ(config.migration.max_tries, 3u);
}

TEST(CliConfig, ProtocolKnobsMapThrough) {
  const auto config = scenario_from_flags(make_flags(
      {"--alpha=2", "--beta=0.25", "--upper-limit=50", "--max-communities=3",
       "--reward=pledge"}));
  EXPECT_DOUBLE_EQ(config.protocol.alpha, 2.0);
  EXPECT_DOUBLE_EQ(config.protocol.beta, 0.25);
  EXPECT_DOUBLE_EQ(config.protocol.help_upper_limit, 50.0);
  EXPECT_EQ(config.protocol.max_communities, 3u);
  EXPECT_EQ(config.protocol.reward_policy,
            proto::HelpRewardPolicy::kOnFirstUsefulPledge);
}

}  // namespace
}  // namespace realtor::experiment
