// End-to-end tracing: a deterministic overloaded scenario with an attack
// wave must emit the full protocol + lifecycle event vocabulary in causal
// order, and attaching a sink must not perturb the run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {
namespace {

using obs::EventKind;
using obs::MemorySink;
using obs::TraceEvent;

// Overloaded 5x5 mesh (offered load 2.4x capacity) with one partial attack
// mid-run: exercises HELP/PLEDGE, threshold crossings, Algorithm-H
// adaptation, migrations, solicitation, evacuation and kills.
ScenarioConfig traced_scenario() {
  ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.sample_interval = 20.0;
  config.attacks.push_back(AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

std::optional<std::uint64_t> uint_field(const TraceEvent& event,
                                        const char* key) {
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    if (std::strcmp(event.fields[i].key, key) == 0) {
      return event.fields[i].u;
    }
  }
  return std::nullopt;
}

TEST(TraceEvents, EmitsFullVocabularyInTimeOrder) {
  ScenarioConfig config = traced_scenario();
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();

  EXPECT_GT(sink.count(EventKind::kTaskArrival), 0u);
  EXPECT_GT(sink.count(EventKind::kTaskAdmitLocal), 0u);
  EXPECT_GT(sink.count(EventKind::kTaskCompleted), 0u);
  EXPECT_GT(sink.count(EventKind::kHelpSent), 0u);
  EXPECT_GT(sink.count(EventKind::kHelpReceived), 0u);
  EXPECT_GT(sink.count(EventKind::kPledgeSent), 0u);
  EXPECT_GT(sink.count(EventKind::kPledgeReceived), 0u);
  EXPECT_GT(sink.count(EventKind::kThresholdCrossing), 0u);
  EXPECT_GT(sink.count(EventKind::kHelpInterval), 0u);
  EXPECT_GT(sink.count(EventKind::kCommunityJoin), 0u);
  EXPECT_GT(sink.count(EventKind::kMigrationAttempt), 0u);
  EXPECT_GT(sink.count(EventKind::kNodeSample), 0u);
  EXPECT_GT(sink.count(EventKind::kSystemSample), 0u);
  // The attack wave: one solicit + one evacuation + one kill per victim,
  // and every victim restored after the outage.
  EXPECT_EQ(sink.count(EventKind::kSolicit), 3u);
  EXPECT_EQ(sink.count(EventKind::kEvacuation), 3u);
  EXPECT_EQ(sink.count(EventKind::kNodeKilled), 3u);
  EXPECT_EQ(sink.count(EventKind::kNodeRestored), 3u);

  // The deterministic engine delivers events in nondecreasing time order,
  // and the sink records in emission order.
  for (std::size_t i = 1; i < sink.events().size(); ++i) {
    ASSERT_LE(sink.events()[i - 1].time, sink.events()[i].time) << i;
  }
}

TEST(TraceEvents, LifecycleIsCausallyOrdered) {
  ScenarioConfig config = traced_scenario();
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();

  // Every admission/rejection record for task T is preceded by T's arrival
  // record on the same node.
  std::vector<char> arrived;  // indexed by task id
  for (const TraceEvent& event : sink.events()) {
    const bool decision = event.kind == EventKind::kTaskAdmitLocal ||
                          event.kind == EventKind::kTaskAdmitMigrated ||
                          event.kind == EventKind::kTaskRejected;
    if (event.kind != EventKind::kTaskArrival && !decision) continue;
    const auto task = uint_field(event, "task");
    ASSERT_TRUE(task.has_value());
    if (*task >= arrived.size()) arrived.resize(*task + 1, 0);
    if (event.kind == EventKind::kTaskArrival) {
      arrived[*task] = 1;
    } else {
      EXPECT_TRUE(arrived[*task])
          << "decision for task " << *task << " before its arrival record";
    }
  }

  // Each killed node solicited and evacuated during the grace period
  // before it went down.
  for (const TraceEvent& kill : sink.events()) {
    if (kill.kind != EventKind::kNodeKilled) continue;
    bool solicited = false;
    bool evacuated = false;
    for (const TraceEvent& event : sink.events_of(kill.node)) {
      if (event.time >= kill.time) break;
      solicited |= event.kind == EventKind::kSolicit;
      evacuated |= event.kind == EventKind::kEvacuation;
    }
    EXPECT_TRUE(solicited) << "node " << kill.node;
    EXPECT_TRUE(evacuated) << "node " << kill.node;
  }
}

TEST(TraceEvents, NodeSamplesCarrySoftStateAndIntervals) {
  ScenarioConfig config = traced_scenario();
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();

  bool saw_help_interval_field = false;
  for (const TraceEvent& event : sink.events()) {
    if (event.kind == EventKind::kNodeSample) {
      ASSERT_GE(event.field_count, 3u);
      EXPECT_STREQ(event.fields[0].key, "occupancy");
      EXPECT_GE(event.fields[0].d, 0.0);
      EXPECT_LE(event.fields[0].d, 1.0);
      for (std::uint32_t i = 0; i < event.field_count; ++i) {
        saw_help_interval_field |=
            std::strcmp(event.fields[i].key, "help_interval") == 0;
      }
    }
    if (event.kind == EventKind::kHelpInterval) {
      for (std::uint32_t i = 0; i < event.field_count; ++i) {
        if (std::strcmp(event.fields[i].key, "reason") != 0) continue;
        const bool known = std::strcmp(event.fields[i].s, "timeout") == 0 ||
                           std::strcmp(event.fields[i].s, "reward") == 0;
        EXPECT_TRUE(known) << event.fields[i].s;
      }
    }
  }
  EXPECT_TRUE(saw_help_interval_field);
}

// The overhead contract's other half: attaching a sink must not change a
// single decision — traced and untraced runs of one seed are identical.
TEST(TraceEvents, TracingDoesNotPerturbTheRun) {
  ScenarioConfig config = traced_scenario();
  Simulation untraced(config);
  untraced.run();

  Simulation traced(config);
  MemorySink sink;
  traced.set_trace_sink(&sink);
  traced.run();

  const RunMetrics& a = untraced.metrics();
  const RunMetrics& b = traced.metrics();
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.admitted_local, b.admitted_local);
  EXPECT_EQ(a.admitted_migrated, b.admitted_migrated);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.evacuated, b.evacuated);
  EXPECT_EQ(a.lost_to_attack, b.lost_to_attack);
  EXPECT_EQ(a.ledger.total_sends(), b.ledger.total_sends());
  EXPECT_DOUBLE_EQ(a.ledger.total_cost(), b.ledger.total_cost());
  EXPECT_GT(sink.events().size(), 0u);
}

// Episode threading rides the existing message flow: HELP records carry a
// fresh nonzero episode id and solicited PLEDGE records echo one.
TEST(TraceEvents, EpisodeIdsThreadThroughTheVocabulary) {
  ScenarioConfig config = traced_scenario();
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();

  std::uint64_t max_episode = 0;
  for (const TraceEvent& event : sink.events()) {
    if (event.kind == EventKind::kHelpSent) {
      const auto episode = uint_field(event, "episode");
      ASSERT_TRUE(episode.has_value());
      EXPECT_GT(*episode, 0u);
      max_episode = std::max(max_episode, *episode);
    }
  }
  EXPECT_GT(max_episode, 0u);
  // The shared source issued exactly the ids the HELPs consumed.
  EXPECT_EQ(sim.episodes().issued(), max_episode);
}

// Determinism, bit-for-bit: two traced runs of the same seed serialize to
// the identical JSONL byte stream — episode allocation is part of the
// deterministic event order, not a side channel.
TEST(TraceEvents, SameSeedYieldsIdenticalTrace) {
  const ScenarioConfig config = traced_scenario();
  std::vector<std::string> lines[2];
  for (std::vector<std::string>& run : lines) {
    Simulation sim(config);
    MemorySink sink;
    sim.set_trace_sink(&sink);
    sim.run();
    run.reserve(sink.events().size());
    for (const TraceEvent& event : sink.events()) {
      run.push_back(obs::format_jsonl(event));
    }
  }
  ASSERT_EQ(lines[0].size(), lines[1].size());
  for (std::size_t i = 0; i < lines[0].size(); ++i) {
    ASSERT_EQ(lines[0][i], lines[1][i]) << "line " << i;
  }
}

// Golden Fig. 6 message-economy totals (seed 7, 5x5 mesh, no attacks),
// captured before episode threading landed: threading ids through
// HELP/PLEDGE must not add, drop or reorder a single message.
TEST(TraceEvents, EpisodeThreadingPreservesMessageEconomy) {
  struct Golden {
    proto::ProtocolKind kind;
    std::uint64_t sends;
    double cost;
  };
  const Golden golden[] = {
      {proto::ProtocolKind::kRealtor, 3212u, 22408.0},
      {proto::ProtocolKind::kPurePull, 5617u, 48468.0},
      {proto::ProtocolKind::kPurePush, 3315u, 122092.0},
      {proto::ProtocolKind::kAdaptivePush, 153u, 3764.0},
      {proto::ProtocolKind::kAdaptivePull, 2380u, 18096.0},
      {proto::ProtocolKind::kGossip, 12252u, 49640.0},
  };
  for (const Golden& expected : golden) {
    ScenarioConfig config = traced_scenario();
    config.attacks.clear();
    config.protocol_kind = expected.kind;
    Simulation sim(config);
    sim.run();
    EXPECT_EQ(sim.metrics().ledger.total_sends(), expected.sends)
        << proto::to_string(expected.kind);
    EXPECT_DOUBLE_EQ(sim.metrics().ledger.total_cost(), expected.cost)
        << proto::to_string(expected.kind);
  }
}

TEST(TraceEvents, SamplerHonorsConfiguredInterval) {
  ScenarioConfig config = traced_scenario();
  config.attacks.clear();
  config.duration = 100.0;
  config.sample_interval = 25.0;
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();
  // Ticks at 25/50/75/100 with 25 alive nodes each.
  EXPECT_EQ(sink.count(EventKind::kNodeSample), 4u * 25u);
}

}  // namespace
}  // namespace realtor::experiment
