#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "experiment/figures.hpp"
#include "experiment/sweep.hpp"

namespace realtor::experiment {
namespace {

ScenarioConfig fast_base() {
  ScenarioConfig c;
  c.duration = 60.0;
  c.seed = 5;
  return c;
}

SweepOptions small_options() {
  SweepOptions options;
  options.lambdas = {2.0, 8.0};
  options.protocols = {proto::ProtocolKind::kRealtor,
                       proto::ProtocolKind::kPurePush};
  options.replications = 2;
  return options;
}

TEST(Sweep, ProducesFullGrid) {
  const auto cells = run_sweep(fast_base(), small_options());
  ASSERT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.admission_probability.count(), 2u);
    EXPECT_GT(cell.summed.generated, 0u);
  }
}

TEST(Sweep, CommonRandomNumbersAcrossProtocols) {
  const auto cells = run_sweep(fast_base(), small_options());
  // Cells are protocol-major: [realtor@2, realtor@8, push@2, push@8].
  EXPECT_EQ(cells[0].summed.generated, cells[2].summed.generated);
  EXPECT_EQ(cells[1].summed.generated, cells[3].summed.generated);
}

TEST(Sweep, ReplicationsUseDistinctSeeds) {
  SweepOptions options = small_options();
  options.lambdas = {10.0};
  options.protocols = {proto::ProtocolKind::kRealtor};
  options.replications = 3;
  // Long enough that the overload actually rejects tasks: otherwise every
  // replication reports admission probability exactly 1 and variance 0.
  ScenarioConfig base = fast_base();
  base.duration = 300.0;
  const auto cells = run_sweep(base, options);
  ASSERT_EQ(cells.size(), 1u);
  // With three independent replications the admission probabilities are
  // not all identical (variance > 0 under overload).
  EXPECT_GT(cells[0].admission_probability.variance(), 0.0);
}

TEST(Sweep, ProgressCallbackFires) {
  SweepOptions options = small_options();
  int calls = 0;
  options.on_run = [&](const SweepCell&, std::uint32_t) { ++calls; };
  run_sweep(fast_base(), options);
  EXPECT_EQ(calls, 2 * 2 * 2);
}

TEST(Sweep, PaperOptionsCoverAllFiveProtocols) {
  const auto options = paper_sweep_options({5.0}, 3);
  EXPECT_EQ(options.protocols.size(), 5u);
  EXPECT_EQ(options.replications, 3u);
}

TEST(Figures, TableShapesMatchSweep) {
  const auto cells = run_sweep(fast_base(), small_options());
  const Table t5 = fig5_admission_probability(cells);
  EXPECT_EQ(t5.num_rows(), 2u);       // two lambdas
  EXPECT_EQ(t5.num_cols(), 3u);       // lambda + two protocols
  const Table t6 = fig6_message_overhead(cells);
  EXPECT_EQ(t6.num_rows(), 2u);
  const Table t7 = fig7_cost_per_admitted(cells);
  const Table t8 = fig8_migration_rate(cells);
  EXPECT_EQ(t7.num_cols(), 3u);
  EXPECT_EQ(t8.num_cols(), 3u);
}

TEST(Figures, AdmissionValuesAreProbabilities) {
  const auto cells = run_sweep(fast_base(), small_options());
  const Table t = fig5_admission_probability(cells);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 1; c < t.num_cols(); ++c) {
      const double v = std::stod(t.at(r, c));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Figures, CiColumnsDoubleWidth) {
  const auto cells = run_sweep(fast_base(), small_options());
  const Table t = figure_table(
      cells,
      [](const SweepCell& c) -> const OnlineStats& {
        return c.admission_probability;
      },
      4, /*with_ci=*/true);
  EXPECT_EQ(t.num_cols(), 1u + 2u * 2u);
}

TEST(Figures, EmitWritesCsv) {
  const auto cells = run_sweep(fast_base(), small_options());
  const std::string path = ::testing::TempDir() + "/fig_test.csv";
  emit_figure("test", fig5_admission_probability(cells), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("lambda"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace realtor::experiment
