// Attack / evacuation experiments — the survivability behaviour the paper
// motivates in §1 ("components may want to migrate to locations that are
// not being attacked").
#include <gtest/gtest.h>

#include "experiment/simulation.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {
namespace {

ScenarioConfig attacked_config(proto::ProtocolKind kind, double grace) {
  ScenarioConfig c;
  c.protocol_kind = kind;
  c.lambda = 4.0;  // moderate load so destinations have room
  c.duration = 200.0;
  c.seed = 21;
  AttackWave wave;
  wave.time = 100.0;
  wave.count = 5;
  wave.grace = grace;
  wave.outage = 50.0;
  c.attacks = {wave};
  return c;
}

TEST(Survivability, NoGraceLosesResidentWork) {
  Simulation sim(attacked_config(proto::ProtocolKind::kRealtor, 0.0));
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.lost_to_attack, 0u);
  EXPECT_EQ(m.evacuation_candidates, 0u);  // no warning, no evacuation
}

TEST(Survivability, GracePeriodEvacuatesWork) {
  Simulation sim(attacked_config(proto::ProtocolKind::kRealtor, 1.0));
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.evacuation_candidates, 0u);
  EXPECT_GT(m.evacuated, 0u);
  // Everything resident was either rescued or perished. lost_to_attack can
  // exceed the shortfall: tasks admitted to a victim after its evacuation
  // (or evacuated onto another victim) die at the kill instant.
  EXPECT_GE(m.evacuated + m.lost_to_attack, m.evacuation_candidates);
}

TEST(Survivability, RealtorEvacuatesMostResidentWork) {
  // At moderate load REALTOR's soft-state lists find live destinations for
  // the bulk of the work on attacked nodes.
  Simulation sim(attacked_config(proto::ProtocolKind::kRealtor, 1.0));
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.evacuation_success_rate(), 0.5);
}

TEST(Survivability, ArrivalsAtDeadNodesAccounted) {
  ScenarioConfig c = attacked_config(proto::ProtocolKind::kRealtor, 0.0);
  c.attacks[0].outage = 0.0;  // nodes stay dead
  c.attacks[0].count = 10;
  Simulation sim(c);
  const RunMetrics& m = sim.run();
  EXPECT_GT(m.arrivals_at_dead_nodes, 0u);
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected +
                             m.arrivals_at_dead_nodes);
}

TEST(Survivability, SystemRecoversAfterOutage) {
  ScenarioConfig c = attacked_config(proto::ProtocolKind::kRealtor, 1.0);
  c.duration = 400.0;  // run well past the 150s restore point
  Simulation sim(c);
  const RunMetrics& m = sim.run();
  // After restoration all 25 nodes serve again: late-arriving tasks are
  // admitted and the overall probability stays high at lambda=4.
  EXPECT_GT(m.admission_probability(), 0.9);
}

class SurvivabilityAllProtocols
    : public ::testing::TestWithParam<proto::ProtocolKind> {};

TEST_P(SurvivabilityAllProtocols, ConservationHoldsUnderAttack) {
  Simulation sim(attacked_config(GetParam(), 1.0));
  const RunMetrics& m = sim.run();
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected +
                             m.arrivals_at_dead_nodes);
  EXPECT_GE(m.evacuated + m.lost_to_attack, m.evacuation_candidates);
}

TEST_P(SurvivabilityAllProtocols, DeadNodesNeitherSendNorReceive) {
  ScenarioConfig c = attacked_config(GetParam(), 0.0);
  c.attacks[0].count = 24;  // leave one node alive
  c.attacks[0].outage = 0.0;
  Simulation sim(c);
  const RunMetrics& m = sim.run();
  // The lone survivor cannot migrate anywhere: all migrations that happen
  // must have happened before the attack at t=100.
  EXPECT_EQ(m.generated, m.admitted_local + m.admitted_migrated + m.rejected +
                             m.arrivals_at_dead_nodes);
  EXPECT_GT(m.arrivals_at_dead_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SurvivabilityAllProtocols,
                         ::testing::ValuesIn(proto::kAllProtocolKinds),
                         [](const auto& tpi) {
                           std::string name = proto::to_string(tpi.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Survivability, StalePushStateHurtsEvacuationLessThanSoftState) {
  // The paper's claim 3: soft state handles adverse environments. Compare
  // REALTOR against pure PUSH under a two-wave attack where the first wave
  // poisons push tables with entries for nodes that die in the second.
  auto base = attacked_config(proto::ProtocolKind::kRealtor, 1.0);
  AttackWave second;
  second.time = 150.0;
  second.count = 5;
  second.grace = 1.0;
  second.outage = 50.0;
  base.attacks.push_back(second);

  auto push = base;
  push.protocol_kind = proto::ProtocolKind::kPurePush;
  const RunMetrics& mr = Simulation(base).run();
  Simulation push_sim(push);
  const RunMetrics& mp = push_sim.run();
  // Both must still conserve; REALTOR's rescue rate is at least comparable
  // (soft state does not trail the stale push tables).
  EXPECT_GE(mr.evacuated + mr.lost_to_attack, mr.evacuation_candidates);
  EXPECT_GE(mp.evacuated + mp.lost_to_attack, mp.evacuation_candidates);
  EXPECT_GE(mr.evacuation_success_rate() + 0.15,
            mp.evacuation_success_rate());
}

}  // namespace
}  // namespace realtor::experiment
