// Zero-copy fan-out data path: proof of equivalence between batched and
// per-destination delivery scheduling, the one-allocation-per-flood
// payload guarantee, and record-and-drop accounting for unicasts across a
// partition of the alive subgraph.
#include <gtest/gtest.h>

#include <vector>

#include "experiment/sim_transport.hpp"
#include "experiment/simulation.hpp"

namespace realtor::experiment {
namespace {

struct Delivery {
  NodeId to;
  NodeId from;
  SimTime at;

  bool operator==(const Delivery& o) const {
    return to == o.to && from == o.from && at == o.at;
  }
};

class TransportFanoutTest : public ::testing::Test {
 protected:
  TransportFanoutTest()
      : topo_(net::make_mesh(5, 5)),
        cost_(topo_, net::CostMode::kPaperAverage, 4.0) {}

  SimTransport make(SimTime delay) {
    return SimTransport(engine_, topo_, cost_, ledger_, delay,
                        [this](NodeId to, NodeId from, const proto::Message&) {
                          deliveries_.push_back(
                              Delivery{to, from, engine_.now()});
                        });
  }

  sim::Engine engine_;
  net::Topology topo_;
  net::CostModel cost_;
  net::MessageLedger ledger_;
  std::vector<Delivery> deliveries_;
};

// The proof-of-equivalence check: the same flood + liveness script runs
// once with per-destination events and once batched; under the engine's
// time-then-FIFO ordering the delivery sequences must be element-for-
// element identical, including a kill landing between two floods.
TEST_F(TransportFanoutTest, BatchedMatchesPerDestinationDeliverySequence) {
  const proto::Message msg{proto::HelpMsg{3, 0, 0.5}};
  std::vector<Delivery> reference;
  for (const SimTransport::DeliveryMode mode :
       {SimTransport::DeliveryMode::kPerDestination,
        SimTransport::DeliveryMode::kBatched}) {
    sim::Engine engine;
    net::Topology topo = net::make_mesh(5, 5);
    net::CostModel cost(topo, net::CostMode::kPaperAverage, 4.0);
    net::MessageLedger ledger;
    std::vector<Delivery> deliveries;
    SimTransport transport(
        engine, topo, cost, ledger, 0.0,
        [&deliveries, &engine](NodeId to, NodeId from, const proto::Message&) {
          deliveries.push_back(Delivery{to, from, engine.now()});
        });
    transport.set_delivery_mode(mode);
    engine.schedule_at(1.0, [&] { transport.flood(3, msg); });
    engine.schedule_at(1.0, [&] { topo.set_alive(7, false); });
    engine.schedule_at(2.0, [&] { transport.flood(12, msg); });
    engine.schedule_at(3.0, [&] { topo.set_alive(7, true); });
    engine.schedule_at(4.0, [&] { transport.flood(7, msg); });
    engine.run();
    if (mode == SimTransport::DeliveryMode::kPerDestination) {
      reference = deliveries;
      // Node 7 misses the first flood too: the kill fires at the same
      // timestamp as the flood but before its zero-delay deliveries, and
      // liveness is checked at delivery time. 23 + 23 + 24.
      ASSERT_EQ(reference.size(), 70u);
    } else {
      EXPECT_EQ(deliveries, reference);
    }
  }
}

// Positive-delay floods stay hop-accurate and per-destination even when
// batching is requested; the schedule must match the per-destination one.
TEST_F(TransportFanoutTest, DelayedFloodIsHopAccurateUnderBothModes) {
  std::vector<Delivery> reference;
  for (const SimTransport::DeliveryMode mode :
       {SimTransport::DeliveryMode::kPerDestination,
        SimTransport::DeliveryMode::kBatched}) {
    sim::Engine engine;
    net::Topology topo = net::make_mesh(5, 5);
    net::CostModel cost(topo, net::CostMode::kPaperAverage, 4.0);
    net::MessageLedger ledger;
    std::vector<Delivery> deliveries;
    SimTransport transport(
        engine, topo, cost, ledger, 0.5,
        [&deliveries, &engine](NodeId to, NodeId from, const proto::Message&) {
          deliveries.push_back(Delivery{to, from, engine.now()});
        });
    transport.set_delivery_mode(mode);
    transport.flood(0, proto::Message{proto::HelpMsg{0, 0, 0.5}});
    engine.run();
    ASSERT_EQ(deliveries.size(), 24u);
    // Hop-accurate: the far corner hears last, one leg per hop.
    EXPECT_DOUBLE_EQ(deliveries.front().at, 0.5);   // a 1-hop neighbor
    EXPECT_DOUBLE_EQ(deliveries.back().at, 4.0);    // node 24, 8 hops
    if (mode == SimTransport::DeliveryMode::kPerDestination) {
      reference = deliveries;
    } else {
      EXPECT_EQ(deliveries, reference);
    }
  }
}

// One ref-counted envelope per flood regardless of destination count or
// scheduling mode — the allocation-counting hook of the acceptance
// criteria.
TEST_F(TransportFanoutTest, FloodAllocatesExactlyOnePayload) {
  auto transport = make(0.0);
  EXPECT_EQ(transport.payload_allocations(), 0u);
  transport.flood(0, proto::Message{proto::HelpMsg{0, 0, 0.5}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 24u);
  EXPECT_EQ(transport.payload_allocations(), 1u);

  transport.set_delivery_mode(SimTransport::DeliveryMode::kPerDestination);
  transport.flood(12, proto::Message{proto::HelpMsg{12, 1, 0.5}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 48u);
  EXPECT_EQ(transport.payload_allocations(), 2u);
}

TEST_F(TransportFanoutTest, EscalateAllocatesExactlyOnePayload) {
  auto transport = make(0.0);
  const federation::GroupMap groups =
      federation::GroupMap::mesh_blocks(5, 5, 5, 1);  // 5 groups of 5
  transport.set_group_map(&groups);
  transport.escalate(0, 2, proto::Message{proto::HelpMsg{0, 0, 0.9}});
  engine_.run();
  EXPECT_EQ(deliveries_.size(), 5u);  // whole row 2, origin not a member
  EXPECT_EQ(transport.payload_allocations(), 1u);
}

// A full simulation (attacks, migrations, periodic floods) must produce
// identical metrics under forced per-destination and forced batched
// scheduling — the end-to-end half of the equivalence argument.
TEST(TransportEquivalence, FullRunMetricsIdenticalAcrossDeliveryModes) {
  ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kPurePush;
  config.duration = 60.0;
  config.lambda = 6.0;
  config.seed = 7;
  AttackWave wave;
  wave.time = 20.0;
  wave.count = 3;
  wave.outage = 15.0;
  config.attacks.push_back(wave);

  net::LedgerSnapshot ledgers[2];
  std::uint64_t generated[2], migrated[2], completed[2], lost[2];
  int i = 0;
  for (const SimTransport::DeliveryMode mode :
       {SimTransport::DeliveryMode::kPerDestination,
        SimTransport::DeliveryMode::kBatched}) {
    Simulation sim(config);
    sim.transport().set_delivery_mode(mode);
    const RunMetrics& m = sim.run();
    ledgers[i] = m.ledger.snapshot();
    generated[i] = m.generated;
    migrated[i] = m.admitted_migrated;
    completed[i] = m.completed;
    lost[i] = m.lost_to_attack;
    ++i;
  }
  EXPECT_EQ(generated[0], generated[1]);
  EXPECT_EQ(migrated[0], migrated[1]);
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(lost[0], lost[1]);
  EXPECT_EQ(ledgers[0].total_sends, ledgers[1].total_sends);
  EXPECT_DOUBLE_EQ(ledgers[0].total_cost, ledgers[1].total_cost);
  EXPECT_DOUBLE_EQ(ledgers[0].overhead_cost, ledgers[1].overhead_cost);
}

// Record-and-drop: a unicast between alive endpoints in different
// partitions is charged to the ledger but never delivered; a unicast
// inside one partition still flows.
TEST(TransportPartition, UnreachableUnicastIsRecordedAndDropped) {
  sim::Engine engine;
  net::Topology ring = net::make_ring(6);
  net::CostModel cost(ring, net::CostMode::kPaperAverage, 4.0);
  net::MessageLedger ledger;
  std::vector<Delivery> deliveries;
  SimTransport transport(
      engine, ring, cost, ledger, 0.0,
      [&](NodeId to, NodeId from, const proto::Message&) {
        deliveries.push_back(Delivery{to, from, engine.now()});
      });

  ring.set_alive(0, false);
  ring.set_alive(3, false);  // {1,2} | {4,5}

  const proto::Message pledge{proto::PledgeMsg{1, 0.5, 0, 1.0}};
  transport.unicast(1, 4, pledge);  // across the partition
  engine.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(transport.dropped_unreachable(), 1u);
  // The send attempt is still accounted at the cost-model price.
  EXPECT_EQ(ledger.sends(net::MessageKind::kPledge), 1u);
  EXPECT_DOUBLE_EQ(ledger.cost(net::MessageKind::kPledge), 4.0);

  transport.unicast(1, 2, pledge);  // same partition: delivered
  engine.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].to, 2u);
  EXPECT_EQ(transport.dropped_unreachable(), 1u);
  EXPECT_EQ(ledger.sends(net::MessageKind::kPledge), 2u);

  // A unicast to a dead node keeps the old semantics: charged, silently
  // dropped at delivery time, and NOT counted as a partition drop.
  transport.unicast(1, 0, pledge);
  engine.run();
  EXPECT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(transport.dropped_unreachable(), 1u);
  EXPECT_EQ(ledger.sends(net::MessageKind::kPledge), 3u);
}

}  // namespace
}  // namespace realtor::experiment
