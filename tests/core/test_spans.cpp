// Discovery-episode spans: episode ids thread causally through
// HELP/PLEDGE/migration traces, the span builder reconstructs the arcs,
// and the summary derives latency percentiles from them.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "experiment/simulation.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {
namespace {

using experiment::AttackWave;
using experiment::ScenarioConfig;
using experiment::Simulation;

ScenarioConfig overloaded_scenario() {
  ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.sample_interval = 20.0;
  config.attacks.push_back(AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

std::vector<SpanEvent> run_traced(ScenarioConfig config) {
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();
  return normalize_events(sink.events());
}

TEST(EpisodeSource, IdsStartAtOneAndIncrease) {
  EpisodeSource source;
  EXPECT_EQ(source.issued(), 0u);
  EXPECT_EQ(source.next(), 1u);
  EXPECT_EQ(source.next(), 2u);
  EXPECT_EQ(source.issued(), 2u);
}

TEST(SpanNormalize, LiftsTypedFieldsFromTraceEvent) {
  TraceEvent event(4.5, 3, EventKind::kPledgeSent);
  event.with("organizer", 9)
      .with("availability", 0.625)
      .with("grant_probability", 0.5)
      .with("episode", std::uint64_t{17});
  const SpanEvent span = normalize(event);
  EXPECT_DOUBLE_EQ(span.time, 4.5);
  EXPECT_EQ(span.node, 3u);
  EXPECT_EQ(span.kind, EventKind::kPledgeSent);
  EXPECT_EQ(span.peer, 9u);
  EXPECT_DOUBLE_EQ(span.availability, 0.625);
  EXPECT_EQ(span.episode, 17u);
  EXPECT_DOUBLE_EQ(span.interval, -1.0);  // absent sentinel
  EXPECT_DOUBLE_EQ(span.urgency, -1.0);
}

TEST(SpanNormalize, JsonlRoundTripMatchesLiveEvent) {
  TraceEvent event(2.0, 6, EventKind::kHelpReceived);
  event.with("origin", 1)
      .with("urgency", 0.75)
      .with("answered", true)
      .with("episode", std::uint64_t{3});
  ParsedEvent parsed;
  ASSERT_TRUE(parse_jsonl_line(format_jsonl(event), parsed));
  SpanEvent from_jsonl;
  ASSERT_TRUE(normalize(parsed, from_jsonl));
  const SpanEvent live = normalize(event);
  EXPECT_EQ(from_jsonl.kind, live.kind);
  EXPECT_EQ(from_jsonl.peer, live.peer);
  EXPECT_EQ(from_jsonl.episode, live.episode);
  EXPECT_EQ(from_jsonl.answered, live.answered);
  EXPECT_DOUBLE_EQ(from_jsonl.urgency, live.urgency);

  parsed.kind = "no_such_kind";
  SpanEvent ignored;
  EXPECT_FALSE(normalize(parsed, ignored));
}

// The tentpole's core property: every solicited PLEDGE echoes the episode
// of a HELP its receiver actually flooded, and HELP episodes are fresh
// ids, strictly increasing per node.
TEST(EpisodeThreading, PledgesEchoTheSolicitingHelp) {
  const std::vector<SpanEvent> events = run_traced(overloaded_scenario());

  std::map<NodeId, std::uint64_t> last_help;
  std::map<NodeId, std::set<std::uint64_t>> opened;
  std::uint64_t helps = 0;
  std::uint64_t solicited_pledges = 0;
  for (const SpanEvent& event : events) {
    if (event.kind == EventKind::kHelpSent) {
      ++helps;
      ASSERT_GT(event.episode, 0u) << "HELP without an episode id";
      const auto it = last_help.find(event.node);
      if (it != last_help.end()) {
        EXPECT_GT(event.episode, it->second) << "episode id not fresh";
      }
      last_help[event.node] = event.episode;
      opened[event.node].insert(event.episode);
    } else if (event.kind == EventKind::kPledgeReceived &&
               event.episode > 0) {
      ++solicited_pledges;
      ASSERT_TRUE(opened[event.node].count(event.episode))
          << "pledge echoes an episode node " << event.node
          << " never opened";
    }
  }
  EXPECT_GT(helps, 0u);
  EXPECT_GT(solicited_pledges, 0u);
}

// REALTOR's unsolicited status pledges (threshold crossings) carry
// episode 0 — they belong to no solicitation round.
TEST(EpisodeThreading, UnsolicitedStatusPledgesCarryNoEpisode) {
  const std::vector<SpanEvent> events = run_traced(overloaded_scenario());
  std::uint64_t unsolicited = 0;
  for (const SpanEvent& event : events) {
    if (event.kind == EventKind::kPledgeSent && event.episode == 0) {
      ++unsolicited;
    }
  }
  // The scenario produces many threshold crossings with joined
  // communities, so some status pledges must exist.
  EXPECT_GT(unsolicited, 0u);
}

TEST(EpisodeThreading, MigrationsAttributeToAnOpenedEpisode) {
  const std::vector<SpanEvent> events = run_traced(overloaded_scenario());
  std::set<std::uint64_t> all_opened;
  std::uint64_t attributed = 0;
  for (const SpanEvent& event : events) {
    if (event.kind == EventKind::kHelpSent) {
      all_opened.insert(event.episode);
    } else if (event.kind == EventKind::kMigrationSuccess) {
      if (event.episode == 0) continue;  // before the node's first HELP
      ++attributed;
      EXPECT_TRUE(all_opened.count(event.episode));
    }
  }
  EXPECT_GT(attributed, 0u);
}

TEST(EpisodeSpans, BuildsEpisodesWithLatencies) {
  ScenarioConfig config = overloaded_scenario();
  // A propagation delay separates the HELP from its pledges, making the
  // time-to-first-pledge latency strictly positive.
  config.network_delay = 0.05;
  const std::vector<SpanEvent> events = run_traced(config);
  const std::vector<Episode> episodes = build_episodes(events);
  ASSERT_FALSE(episodes.empty());

  std::uint64_t previous = 0;
  bool some_pledged = false;
  bool some_migrated = false;
  for (const Episode& episode : episodes) {
    EXPECT_GT(episode.id, previous);  // sorted ascending, ids unique
    previous = episode.id;
    ASSERT_TRUE(episode.started);
    EXPECT_NE(episode.origin, kInvalidNode);
    if (episode.has_pledge()) {
      some_pledged = true;
      EXPECT_GE(episode.time_to_first_pledge(), config.network_delay);
    }
    if (episode.has_migration()) {
      some_migrated = true;
      EXPECT_GE(episode.time_to_migration(), 0.0);
      EXPECT_NE(episode.first_migration_target, kInvalidNode);
    }
  }
  EXPECT_TRUE(some_pledged);
  EXPECT_TRUE(some_migrated);
}

TEST(EpisodeSpans, SummaryPercentilesAreOrdered) {
  ScenarioConfig config = overloaded_scenario();
  config.network_delay = 0.05;
  const EpisodeSummary summary =
      summarize_episodes(build_episodes(run_traced(config)));
  EXPECT_GT(summary.episodes, 0u);
  EXPECT_GT(summary.with_pledge, 0u);
  EXPECT_GT(summary.with_migration, 0u);
  EXPECT_EQ(summary.time_to_first_pledge.stats().count(),
            summary.with_pledge);
  EXPECT_EQ(summary.time_to_migration.stats().count(),
            summary.with_migration);
  const Histogram& ttfp = summary.time_to_first_pledge;
  EXPECT_GT(ttfp.p50(), 0.0);
  EXPECT_LE(ttfp.p50(), ttfp.p90());
  EXPECT_LE(ttfp.p90(), ttfp.p99());
  EXPECT_LE(ttfp.p99(), ttfp.stats().max());
  const Histogram& ttm = summary.time_to_migration;
  EXPECT_LE(ttm.p50(), ttm.p90());
  EXPECT_LE(ttm.p90(), ttm.p99());
}

// Adaptive pull threads episodes identically (shared base-class path).
TEST(EpisodeSpans, AdaptivePullThreadsEpisodesToo) {
  ScenarioConfig config = overloaded_scenario();
  config.protocol_kind = proto::ProtocolKind::kAdaptivePull;
  const std::vector<Episode> episodes =
      build_episodes(run_traced(config));
  ASSERT_FALSE(episodes.empty());
  const EpisodeSummary summary = summarize_episodes(episodes);
  EXPECT_GT(summary.with_pledge, 0u);
}

}  // namespace
}  // namespace realtor::obs
