#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace realtor {
namespace {

TEST(Table, CellsRoundTrip) {
  Table t({"a", "b", "c"});
  t.row().cell(std::string("x")).cell(1.5, 2).cell(std::uint64_t{7});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "1.50");
  EXPECT_EQ(t.at(0, 2), "7");
}

TEST(Table, PrintContainsHeadersAndValues) {
  Table t({"lambda", "REALTOR"});
  t.row().cell(5.0, 1).cell(0.95, 2);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lambda"), std::string::npos);
  EXPECT_NE(text.find("REALTOR"), std::string::npos);
  EXPECT_NE(text.find("0.95"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name"});
  t.row().cell(std::string("a,b"));
  t.row().cell(std::string("say \"hi\""));
  std::ostringstream os;
  t.print_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"a,b\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainFieldsUnquoted) {
  Table t({"x", "y"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, SaveCsvWritesFile) {
  Table t({"v"});
  t.row().cell(std::uint64_t{42});
  const std::string path = ::testing::TempDir() + "/realtor_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "v");
  std::getline(in, line);
  EXPECT_EQ(line, "42");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvFailsOnBadPath) {
  Table t({"v"});
  EXPECT_FALSE(t.save_csv("/nonexistent-dir/realtor/x.csv"));
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace realtor
