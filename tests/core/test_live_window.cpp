// The live plane's building blocks: sliding/tail windows, the alert-rule
// grammar, and the deterministic Histogram::merge the windowed quantile
// rollup depends on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/live/rules.hpp"
#include "obs/live/window.hpp"
#include "obs/metrics.hpp"

namespace realtor::obs::live {
namespace {

TEST(TailWindow, KeepsLastNObservations) {
  TailWindow window(3);
  window.observe(1.0);
  window.observe(0.0);
  EXPECT_EQ(window.snapshot().count, 2u);
  EXPECT_DOUBLE_EQ(window.snapshot().mean(), 0.5);
  window.observe(1.0);
  window.observe(1.0);  // evicts the first 1.0 -> {0, 1, 1}
  EXPECT_EQ(window.snapshot().count, 3u);
  EXPECT_DOUBLE_EQ(window.snapshot().sum, 2.0);
  EXPECT_DOUBLE_EQ(window.snapshot().min, 0.0);
  EXPECT_DOUBLE_EQ(window.snapshot().max, 1.0);
}

TEST(TailWindow, ZeroCapacityClampsToOne) {
  TailWindow window(0);
  EXPECT_EQ(window.capacity(), 1u);
  window.observe(3.0);
  window.observe(7.0);
  EXPECT_EQ(window.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(window.snapshot().sum, 7.0);
}

TEST(SlidingWindow, ExpiresObservationsPastSpan) {
  SlidingWindow window(10.0, 5);
  window.observe(1.0, 1.0);
  window.observe(2.0, 1.0);
  window.observe(9.0, 1.0);
  EXPECT_EQ(window.snapshot().count, 3u);
  // Slide to t=13: the bucket holding t=1 and t=2 is now outside
  // (13 - 10, 13]; t=9 survives.
  window.advance(13.0);
  EXPECT_EQ(window.snapshot().count, 1u);
  window.advance(100.0);
  EXPECT_EQ(window.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(window.snapshot().mean(), 0.0);
}

TEST(SlidingWindow, RateUsesElapsedBeforeFullSpan) {
  SlidingWindow window(30.0, 6);
  for (int i = 0; i < 5; ++i) {
    window.count(static_cast<SimTime>(i + 1));
  }
  // 5 events in the first 10 seconds of a 30 s window: the denominator is
  // the elapsed time, not the span, so early rates are not diluted.
  window.advance(10.0);
  EXPECT_DOUBLE_EQ(window.rate(10.0), 0.5);
  // After a full span has elapsed the denominator is the span.
  window.advance(31.0);
  EXPECT_DOUBLE_EQ(window.rate(31.0), window.snapshot().count / 30.0);
}

TEST(SlidingWindow, QuantileRollsUpAcrossBuckets) {
  SlidingWindow window(10.0, 5, /*reservoir_per_bucket=*/16);
  for (int i = 1; i <= 9; ++i) {
    window.observe(static_cast<SimTime>(i), static_cast<double>(i));
  }
  window.advance(9.0);
  EXPECT_NEAR(window.quantile(0.5), 5.0, 1.0);
  EXPECT_GE(window.quantile(0.99), 8.0);
  // Quantiles follow the window: expire the low half.
  window.advance(15.0);
  EXPECT_GE(window.quantile(0.0), 5.0);
}

TEST(SlidingWindow, QuantileZeroWithoutReservoirs) {
  SlidingWindow window(10.0, 5);
  window.observe(1.0, 42.0);
  EXPECT_DOUBLE_EQ(window.quantile(0.5), 0.0);
}

TEST(AlertRules, ParsesTheIssueExamples) {
  AlertRule rule;
  std::string error;
  ASSERT_TRUE(parse_alert_rule("admission_low:admission_probability<0.9/50",
                               rule, &error))
      << error;
  EXPECT_EQ(rule.name, "admission_low");
  EXPECT_EQ(rule.signal, RuleSignal::kAdmissionProbability);
  EXPECT_EQ(rule.op, RuleOp::kLt);
  EXPECT_DOUBLE_EQ(rule.bound, 0.9);
  EXPECT_DOUBLE_EQ(rule.window, 50.0);
  EXPECT_FALSE(rule.relative);

  ASSERT_TRUE(parse_alert_rule("help_storm:help_rate>3x/30", rule, &error))
      << error;
  EXPECT_EQ(rule.signal, RuleSignal::kHelpRate);
  EXPECT_TRUE(rule.relative);
  EXPECT_DOUBLE_EQ(rule.bound, 3.0);

  ASSERT_TRUE(parse_alert_rule("p99_deadline:episode_p99>5/60", rule, &error))
      << error;
  EXPECT_EQ(rule.signal, RuleSignal::kEpisodeP99);
  EXPECT_EQ(rule.op, RuleOp::kGt);
}

TEST(AlertRules, ParsesBurnParamAndWideOps) {
  AlertRule rule;
  std::string error;
  ASSERT_TRUE(
      parse_alert_rule("burn:admission_burn@0.95>=2/100", rule, &error))
      << error;
  EXPECT_EQ(rule.signal, RuleSignal::kAdmissionBurn);
  EXPECT_EQ(rule.op, RuleOp::kGe);
  EXPECT_DOUBLE_EQ(rule.param, 0.95);
  EXPECT_DOUBLE_EQ(rule.window, 100.0);

  ASSERT_TRUE(parse_alert_rule("quorum:nodes_alive<=12", rule, &error))
      << error;
  EXPECT_EQ(rule.signal, RuleSignal::kNodesAlive);
  EXPECT_EQ(rule.op, RuleOp::kLe);
  EXPECT_DOUBLE_EQ(rule.window, 0.0);  // plane default
}

TEST(AlertRules, RoundTripsThroughToString) {
  for (const std::string& spec : default_alert_rules()) {
    AlertRule rule;
    std::string error;
    ASSERT_TRUE(parse_alert_rule(spec, rule, &error)) << error;
    EXPECT_EQ(to_string(rule), spec);
  }
}

TEST(AlertRules, RejectsMalformedSpecs) {
  AlertRule rule;
  std::string error;
  // No name.
  EXPECT_FALSE(parse_alert_rule(":help_rate>3", rule, &error));
  EXPECT_FALSE(parse_alert_rule("help_rate>3", rule, &error));
  // Unknown signal.
  EXPECT_FALSE(parse_alert_rule("a:bogus_signal>3", rule, &error));
  EXPECT_NE(error.find("unknown signal"), std::string::npos);
  // Missing operator / bound.
  EXPECT_FALSE(parse_alert_rule("a:help_rate", rule, &error));
  EXPECT_FALSE(parse_alert_rule("a:help_rate>", rule, &error));
  EXPECT_FALSE(parse_alert_rule("a:help_rate>fast", rule, &error));
  // Bad window.
  EXPECT_FALSE(parse_alert_rule("a:help_rate>3/zero", rule, &error));
  EXPECT_FALSE(parse_alert_rule("a:help_rate>3/-5", rule, &error));
  // Relative bound on a non-rate signal.
  EXPECT_FALSE(parse_alert_rule("a:nodes_alive<2x", rule, &error));
  EXPECT_NE(error.find("rate signals"), std::string::npos);
  // Burn target outside (0, 1).
  EXPECT_FALSE(parse_alert_rule("a:admission_burn@1.5>2", rule, &error));
  EXPECT_FALSE(parse_alert_rule("a:admission_burn>2", rule, &error));
}

TEST(HistogramMerge, ExactStatsAndSmallReservoirUnion) {
  Histogram a(8);
  Histogram b(8);
  for (int i = 1; i <= 4; ++i) a.observe(static_cast<double>(i));
  for (int i = 5; i <= 8; ++i) b.observe(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.stats().count(), 8u);
  EXPECT_DOUBLE_EQ(a.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(a.stats().max(), 8.0);
  EXPECT_DOUBLE_EQ(a.stats().mean(), 4.5);
  // Union fits the capacity: quantiles stay exact.
  EXPECT_TRUE(a.exact());
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 8.0);
}

TEST(HistogramMerge, DownsampleIsMergeOrderIndependent) {
  // Overflowing unions are downsampled by an even stride over the union
  // sorted by (value, seq) — a pure function of the two reservoirs, so
  // a.merge(b) and b.merge(a) must retain identical samples.
  const auto build = [](int lo, int hi) {
    Histogram h(16);
    for (int i = lo; i <= hi; ++i) {
      h.observe(static_cast<double>((i * 7) % 29));
    }
    return h;
  };
  Histogram ab = build(1, 16);
  Histogram ba = build(17, 32);
  const Histogram a = build(1, 16);
  const Histogram b = build(17, 32);
  ab.merge(b);
  ba.merge(a);
  ASSERT_EQ(ab.reservoir_size(), ba.reservoir_size());
  EXPECT_FALSE(ab.exact());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(ab.stats().mean(), ba.stats().mean());
  EXPECT_EQ(ab.stats().count(), ba.stats().count());
}

TEST(HistogramMerge, RepeatedMergeIsDeterministic) {
  // Same inputs, two independent rollups: byte-identical quantiles. This
  // is the property the live plane's windowed p99 relies on across
  // --jobs and --exec modes.
  const auto rollup = [] {
    Histogram total(12);
    for (int bucket = 0; bucket < 6; ++bucket) {
      Histogram h(12);
      for (int i = 0; i < 10; ++i) {
        h.observe(static_cast<double>((bucket * 31 + i * 13) % 47));
      }
      total.merge(h);
    }
    return total;
  };
  const Histogram x = rollup();
  const Histogram y = rollup();
  ASSERT_EQ(x.reservoir_size(), y.reservoir_size());
  for (double q : {0.01, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(x.quantile(q), y.quantile(q));
  }
}

TEST(HistogramMerge, MergingEmptyIsANoOp) {
  Histogram a(4);
  a.observe(2.0);
  const Histogram empty(4);
  a.merge(empty);
  EXPECT_EQ(a.stats().count(), 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 2.0);
  Histogram b(4);
  b.merge(a);
  EXPECT_EQ(b.stats().count(), 1u);
  EXPECT_DOUBLE_EQ(b.quantile(0.5), 2.0);
}

}  // namespace
}  // namespace realtor::obs::live
