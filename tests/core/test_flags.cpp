#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace realtor {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = make({"--lambda=5.5"});
  EXPECT_TRUE(f.has("lambda"));
  EXPECT_DOUBLE_EQ(f.get_double("lambda", 0.0), 5.5);
}

TEST(Flags, SpaceSeparatedForm) {
  const Flags f = make({"--seed", "17"});
  EXPECT_EQ(f.get_int("seed", 0), 17);
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags f = make({"--ci"});
  EXPECT_TRUE(f.get_bool("ci", false));
}

TEST(Flags, MissingFlagFallsBack) {
  const Flags f = make({});
  EXPECT_DOUBLE_EQ(f.get_double("nope", 2.5), 2.5);
  EXPECT_EQ(f.get_string("nope", "dflt"), "dflt");
  EXPECT_FALSE(f.get_bool("nope", false));
}

TEST(Flags, MalformedNumberFallsBack) {
  const Flags f = make({"--x=abc"});
  EXPECT_DOUBLE_EQ(f.get_double("x", 9.0), 9.0);
  EXPECT_EQ(f.get_int("x", 7), 7);
}

TEST(Flags, DoubleList) {
  const Flags f = make({"--lambdas=1,2.5,10"});
  const auto v = f.get_double_list("lambdas", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], 10.0);
}

TEST(Flags, DoubleListMalformedFallsBack) {
  const Flags f = make({"--lambdas=1,x,3"});
  const auto v = f.get_double_list("lambdas", {42.0});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 42.0);
}

TEST(Flags, PositionalArgumentsCollected) {
  const Flags f = make({"file1", "--k=v", "file2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "file1");
  EXPECT_EQ(f.positional()[1], "file2");
}

TEST(Flags, LastDuplicateWins) {
  const Flags f = make({"--a=1", "--a=2"});
  EXPECT_EQ(f.get_int("a", 0), 2);
}

}  // namespace
}  // namespace realtor
