#include "net/shortest_paths.hpp"

#include <gtest/gtest.h>

namespace realtor::net {
namespace {

TEST(ShortestPaths, MeshHopDistances) {
  const Topology mesh = make_mesh(5, 5);
  const ShortestPaths sp(mesh);
  EXPECT_EQ(sp.hops(0, 0), 0u);
  EXPECT_EQ(sp.hops(0, 1), 1u);
  EXPECT_EQ(sp.hops(0, 24), 8u);  // opposite corners: 4 + 4
  EXPECT_EQ(sp.hops(0, 12), 4u);  // corner to center
  EXPECT_EQ(sp.diameter(), 8u);
  EXPECT_TRUE(sp.connected());
}

TEST(ShortestPaths, MeshAveragePathLengthMatchesManhattanExpectation) {
  // On a 5x5 grid the mean Manhattan distance between distinct nodes is
  // 2*E|dx| where E over the joint; computed exactly: 10/3.
  const Topology mesh = make_mesh(5, 5);
  const ShortestPaths sp(mesh);
  EXPECT_NEAR(sp.average_path_length(), 10.0 / 3.0, 1e-9);
}

TEST(ShortestPaths, SymmetricDistances) {
  const Topology t = make_random_connected(15, 25, 4);
  const ShortestPaths sp(t);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(sp.hops(a, b), sp.hops(b, a));
    }
  }
}

TEST(ShortestPaths, TriangleInequality) {
  const Topology t = make_random_connected(12, 20, 8);
  const ShortestPaths sp(t);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      for (NodeId c = 0; c < t.num_nodes(); ++c) {
        ASSERT_LE(sp.hops(a, c), sp.hops(a, b) + sp.hops(b, c));
      }
    }
  }
}

TEST(ShortestPaths, DeadNodeUnreachableAndReroutes) {
  Topology mesh = make_mesh(3, 3);
  // Kill the center: corner-to-corner paths must route around it.
  mesh.set_alive(4, false);
  ShortestPaths sp(mesh);
  EXPECT_EQ(sp.hops(0, 4), kUnreachable);
  EXPECT_EQ(sp.hops(4, 0), kUnreachable);
  EXPECT_EQ(sp.hops(0, 8), 4u);  // still 4 around the edge
  EXPECT_EQ(sp.hops(3, 5), 4u);  // direct path through center gone: 2 -> 4
  EXPECT_TRUE(sp.connected());   // remaining alive nodes still connected
}

TEST(ShortestPaths, PartitionDetected) {
  Topology ring = make_ring(6);
  ring.set_alive(0, false);
  ring.set_alive(3, false);  // cuts the ring into {1,2} and {4,5}
  ShortestPaths sp(ring);
  EXPECT_FALSE(sp.connected());
  EXPECT_EQ(sp.hops(1, 4), kUnreachable);
  EXPECT_EQ(sp.hops(1, 2), 1u);
}

TEST(ShortestPaths, RefreshTracksTopologyVersion) {
  Topology mesh = make_mesh(3, 3);
  ShortestPaths sp(mesh);
  EXPECT_EQ(sp.version(), mesh.version());
  mesh.set_alive(4, false);
  EXPECT_NE(sp.version(), mesh.version());
  sp.refresh();
  EXPECT_EQ(sp.version(), mesh.version());
  EXPECT_EQ(sp.hops(0, 4), kUnreachable);
}

TEST(ShortestPaths, RowMatchesPerPairHops) {
  Topology mesh = make_mesh(4, 4);
  mesh.set_alive(5, false);
  const ShortestPaths sp(mesh);
  const std::uint32_t* row = sp.row(0);
  ASSERT_NE(row, nullptr);
  for (NodeId dest = 0; dest < mesh.num_nodes(); ++dest) {
    EXPECT_EQ(row[dest], sp.hops(0, dest)) << "dest " << dest;
  }
  EXPECT_EQ(row[0], 0u);
  EXPECT_EQ(row[5], kUnreachable);
}

TEST(ShortestPaths, RowCacheEvictionKeepsAnswersCorrect) {
  // More sources than the 64-row cache: every row must still be right
  // after the cache wraps (eviction clears, rows rebuild on demand).
  const Topology mesh = make_mesh(10, 10);
  const ShortestPaths sp(mesh);
  for (NodeId src = 0; src < 100; ++src) {
    EXPECT_EQ(sp.hops(src, src), 0u);
    EXPECT_EQ(sp.hops(src, 99), (9 - src % 10) + (9 - src / 10));
  }
  // Re-query the first source after the cache cycled.
  EXPECT_EQ(sp.hops(0, 99), 18u);
  EXPECT_EQ(sp.row(0)[99], 18u);
}

TEST(ShortestPaths, SampledStatsDeterministicAndClose) {
  const Topology torus = make_torus(60, 60);  // 3600 nodes
  ShortestPaths exact(torus);
  exact.set_sampled_stats(false);
  const double exact_apl = exact.average_path_length();
  EXPECT_FALSE(exact.stats_sampled());

  ShortestPaths sampled(torus);
  sampled.set_sampled_stats(true);
  const double est1 = sampled.average_path_length();
  EXPECT_TRUE(sampled.stats_sampled());
  // Deterministic stride sampling: repeated queries and fresh instances
  // agree bit-for-bit.
  EXPECT_DOUBLE_EQ(sampled.average_path_length(), est1);
  ShortestPaths sampled2(torus);
  sampled2.set_sampled_stats(true);
  EXPECT_DOUBLE_EQ(sampled2.average_path_length(), est1);
  // A torus is vertex-transitive, so any source sample is exact; allow a
  // loose band anyway to keep the test about sanity, not symmetry.
  EXPECT_NEAR(est1, exact_apl, 0.05 * exact_apl);
  EXPECT_EQ(sampled.diameter(), exact.diameter());
}

TEST(ShortestPaths, SampledStatsStayExactBelowThreshold) {
  const Topology mesh = make_mesh(5, 5);
  ShortestPaths sp(mesh);
  sp.set_sampled_stats(true);  // default min_nodes 2500 >> 25
  EXPECT_NEAR(sp.average_path_length(), 10.0 / 3.0, 1e-9);  // exact value
  EXPECT_FALSE(sp.stats_sampled());
}

TEST(ShortestPaths, CompleteGraphAllOnes) {
  const Topology c = make_complete(8);
  const ShortestPaths sp(c);
  EXPECT_DOUBLE_EQ(sp.average_path_length(), 1.0);
  EXPECT_EQ(sp.diameter(), 1u);
}

TEST(ShortestPaths, StarIsTwoHopsBetweenLeaves) {
  const Topology s = make_star(10);
  const ShortestPaths sp(s);
  EXPECT_EQ(sp.hops(1, 2), 2u);
  EXPECT_EQ(sp.hops(0, 5), 1u);
  EXPECT_EQ(sp.diameter(), 2u);
}

}  // namespace
}  // namespace realtor::net
