#include "net/shortest_paths.hpp"

#include <gtest/gtest.h>

namespace realtor::net {
namespace {

TEST(ShortestPaths, MeshHopDistances) {
  const Topology mesh = make_mesh(5, 5);
  const ShortestPaths sp(mesh);
  EXPECT_EQ(sp.hops(0, 0), 0u);
  EXPECT_EQ(sp.hops(0, 1), 1u);
  EXPECT_EQ(sp.hops(0, 24), 8u);  // opposite corners: 4 + 4
  EXPECT_EQ(sp.hops(0, 12), 4u);  // corner to center
  EXPECT_EQ(sp.diameter(), 8u);
  EXPECT_TRUE(sp.connected());
}

TEST(ShortestPaths, MeshAveragePathLengthMatchesManhattanExpectation) {
  // On a 5x5 grid the mean Manhattan distance between distinct nodes is
  // 2*E|dx| where E over the joint; computed exactly: 10/3.
  const Topology mesh = make_mesh(5, 5);
  const ShortestPaths sp(mesh);
  EXPECT_NEAR(sp.average_path_length(), 10.0 / 3.0, 1e-9);
}

TEST(ShortestPaths, SymmetricDistances) {
  const Topology t = make_random_connected(15, 25, 4);
  const ShortestPaths sp(t);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(sp.hops(a, b), sp.hops(b, a));
    }
  }
}

TEST(ShortestPaths, TriangleInequality) {
  const Topology t = make_random_connected(12, 20, 8);
  const ShortestPaths sp(t);
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      for (NodeId c = 0; c < t.num_nodes(); ++c) {
        ASSERT_LE(sp.hops(a, c), sp.hops(a, b) + sp.hops(b, c));
      }
    }
  }
}

TEST(ShortestPaths, DeadNodeUnreachableAndReroutes) {
  Topology mesh = make_mesh(3, 3);
  // Kill the center: corner-to-corner paths must route around it.
  mesh.set_alive(4, false);
  ShortestPaths sp(mesh);
  EXPECT_EQ(sp.hops(0, 4), kUnreachable);
  EXPECT_EQ(sp.hops(4, 0), kUnreachable);
  EXPECT_EQ(sp.hops(0, 8), 4u);  // still 4 around the edge
  EXPECT_EQ(sp.hops(3, 5), 4u);  // direct path through center gone: 2 -> 4
  EXPECT_TRUE(sp.connected());   // remaining alive nodes still connected
}

TEST(ShortestPaths, PartitionDetected) {
  Topology ring = make_ring(6);
  ring.set_alive(0, false);
  ring.set_alive(3, false);  // cuts the ring into {1,2} and {4,5}
  ShortestPaths sp(ring);
  EXPECT_FALSE(sp.connected());
  EXPECT_EQ(sp.hops(1, 4), kUnreachable);
  EXPECT_EQ(sp.hops(1, 2), 1u);
}

TEST(ShortestPaths, RefreshTracksTopologyVersion) {
  Topology mesh = make_mesh(3, 3);
  ShortestPaths sp(mesh);
  EXPECT_EQ(sp.version(), mesh.version());
  mesh.set_alive(4, false);
  EXPECT_NE(sp.version(), mesh.version());
  sp.refresh();
  EXPECT_EQ(sp.version(), mesh.version());
  EXPECT_EQ(sp.hops(0, 4), kUnreachable);
}

TEST(ShortestPaths, CompleteGraphAllOnes) {
  const Topology c = make_complete(8);
  const ShortestPaths sp(c);
  EXPECT_DOUBLE_EQ(sp.average_path_length(), 1.0);
  EXPECT_EQ(sp.diameter(), 1u);
}

TEST(ShortestPaths, StarIsTwoHopsBetweenLeaves) {
  const Topology s = make_star(10);
  const ShortestPaths sp(s);
  EXPECT_EQ(sp.hops(1, 2), 2u);
  EXPECT_EQ(sp.hops(0, 5), 1u);
  EXPECT_EQ(sp.diameter(), 2u);
}

}  // namespace
}  // namespace realtor::net
