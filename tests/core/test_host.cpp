#include "node/host.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace realtor::node {
namespace {

Task make_task(TaskId id, double size, SimTime arrival = 0.0) {
  Task t;
  t.id = id;
  t.size_seconds = size;
  t.arrival_time = arrival;
  t.origin = 0;
  return t;
}

TEST(Host, StartsIdleAndEmpty) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  EXPECT_FALSE(h.busy());
  EXPECT_DOUBLE_EQ(h.backlog_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.occupancy(), 0.0);
}

TEST(Host, ServesTaskToCompletion) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  ASSERT_TRUE(h.try_enqueue(make_task(1, 5.0)));
  EXPECT_TRUE(h.busy());
  EXPECT_DOUBLE_EQ(h.backlog_seconds(), 5.0);
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_FALSE(h.busy());
  EXPECT_EQ(h.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(h.completed_work_seconds(), 5.0);
}

TEST(Host, BacklogDecreasesAsServiceProgresses) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  h.try_enqueue(make_task(1, 10.0));
  e.schedule_at(4.0, [&] { EXPECT_DOUBLE_EQ(h.backlog_seconds(), 6.0); });
  e.run();
}

TEST(Host, FifoServiceOrder) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  std::vector<TaskId> completions;
  h.set_completion_listener([&](const Host&, const Task& t) {
    completions.push_back(t.id);
  });
  h.try_enqueue(make_task(1, 2.0));
  h.try_enqueue(make_task(2, 3.0));
  h.try_enqueue(make_task(3, 1.0));
  e.run();
  EXPECT_EQ(completions, (std::vector<TaskId>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 6.0);
}

TEST(Host, RejectsWhenFull) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  EXPECT_TRUE(h.try_enqueue(make_task(1, 6.0)));
  EXPECT_TRUE(h.try_enqueue(make_task(2, 4.0)));  // exactly full
  EXPECT_FALSE(h.would_fit(0.1));
  EXPECT_FALSE(h.try_enqueue(make_task(3, 0.1)));
  EXPECT_EQ(h.queued_count(), 1u);  // task 2 queued, task 1 in service
}

TEST(Host, ExactlyFullIsAdmissible) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  EXPECT_TRUE(h.try_enqueue(make_task(1, 10.0)));
  EXPECT_DOUBLE_EQ(h.occupancy(), 1.0);
}

TEST(Host, CapacityFreesAsWorkDrains) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  h.try_enqueue(make_task(1, 10.0));
  EXPECT_FALSE(h.would_fit(1.0));
  e.schedule_at(5.0, [&] {
    EXPECT_TRUE(h.would_fit(5.0));
    EXPECT_TRUE(h.try_enqueue(make_task(2, 5.0)));
  });
  e.run();
  EXPECT_EQ(h.completed_count(), 2u);
  EXPECT_DOUBLE_EQ(e.now(), 15.0);
}

TEST(Host, StatusListenerFiresOnAdmissionAndCompletion) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  int notifications = 0;
  h.set_status_listener([&](const Host&) { ++notifications; });
  h.try_enqueue(make_task(1, 1.0));
  h.try_enqueue(make_task(2, 1.0));
  e.run();
  // 2 admissions + 2 completions.
  EXPECT_EQ(notifications, 4);
}

TEST(Host, ClearDropsEverything) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  h.try_enqueue(make_task(1, 5.0));
  h.try_enqueue(make_task(2, 5.0));
  h.try_enqueue(make_task(3, 5.0));
  EXPECT_EQ(h.clear(), 3u);
  EXPECT_FALSE(h.busy());
  EXPECT_DOUBLE_EQ(h.backlog_seconds(), 0.0);
  e.run();
  EXPECT_EQ(h.completed_count(), 0u);
}

TEST(Host, DrainReturnsRemainingWorkOfInServiceTask) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  h.try_enqueue(make_task(1, 10.0));
  h.try_enqueue(make_task(2, 4.0));
  std::vector<Task> drained;
  e.schedule_at(3.0, [&] { drained = h.drain(); });
  e.run();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 1u);
  // §6: migratable state is "the current value of un-expired time".
  EXPECT_DOUBLE_EQ(drained[0].size_seconds, 7.0);
  EXPECT_EQ(drained[1].id, 2u);
  EXPECT_DOUBLE_EQ(drained[1].size_seconds, 4.0);
  EXPECT_EQ(h.completed_count(), 0u);
}

TEST(Host, DrainOnIdleHostIsEmpty) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  EXPECT_TRUE(h.drain().empty());
}

TEST(Host, WorkAfterClearIsServedNormally) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  h.try_enqueue(make_task(1, 5.0));
  e.schedule_at(1.0, [&] {
    h.clear();
    h.try_enqueue(make_task(2, 2.0));
  });
  e.run();
  EXPECT_EQ(h.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(HostMultiResource, SecurityClearanceGatesAdmission) {
  sim::Engine e;
  HostResources resources;
  resources.security_level = 2;
  Host h(e, 0, 100.0, resources);
  Task cleared = make_task(1, 5.0);
  cleared.min_security = 2;
  EXPECT_TRUE(h.can_accept(cleared));
  Task too_demanding = make_task(2, 5.0);
  too_demanding.min_security = 3;
  EXPECT_FALSE(h.can_accept(too_demanding));
  EXPECT_FALSE(h.try_enqueue(too_demanding));
  EXPECT_TRUE(h.would_fit(5.0));  // the CPU dimension alone would fit
}

TEST(HostMultiResource, BandwidthSharesAccumulateAndRelease) {
  sim::Engine e;
  HostResources resources;
  resources.bandwidth_capacity = 1.0;
  Host h(e, 0, 100.0, resources);
  Task a = make_task(1, 5.0);
  a.bandwidth_share = 0.6;
  Task b = make_task(2, 5.0);
  b.bandwidth_share = 0.6;
  EXPECT_TRUE(h.try_enqueue(a));
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.6);
  EXPECT_FALSE(h.try_enqueue(b));  // NIC full although CPU queue is not
  e.run();                         // task a completes, share released
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.0);
  EXPECT_TRUE(h.try_enqueue(b));
}

TEST(HostMultiResource, QueuedTasksHoldBandwidthUntilCompletion) {
  sim::Engine e;
  HostResources resources;
  Host h(e, 0, 100.0, resources);
  Task a = make_task(1, 4.0);
  a.bandwidth_share = 0.5;
  Task b = make_task(2, 4.0);
  b.bandwidth_share = 0.5;
  ASSERT_TRUE(h.try_enqueue(a));
  ASSERT_TRUE(h.try_enqueue(b));  // queued behind a, share held already
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 1.0);
  e.schedule_at(5.0, [&] {  // a done, b in service
    EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.5);
  });
  e.run();
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.0);
}

TEST(HostMultiResource, BottleneckOccupancyTakesTheBindingDimension) {
  sim::Engine e;
  Host h(e, 0, 100.0, HostResources{});
  Task t = make_task(1, 10.0);  // CPU occupancy 0.1
  t.bandwidth_share = 0.8;      // NIC utilization 0.8
  ASSERT_TRUE(h.try_enqueue(t));
  EXPECT_DOUBLE_EQ(h.occupancy(), 0.1);
  EXPECT_DOUBLE_EQ(h.bottleneck_occupancy(), 0.8);
}

TEST(HostMultiResource, DrainReleasesBandwidth) {
  sim::Engine e;
  Host h(e, 0, 100.0, HostResources{});
  Task t = make_task(1, 10.0);
  t.bandwidth_share = 0.7;
  ASSERT_TRUE(h.try_enqueue(t));
  const auto drained = h.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_DOUBLE_EQ(drained[0].bandwidth_share, 0.7);  // travels with it
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.0);
}

TEST(HostMultiResource, DefaultsReproduceCpuOnlyModel) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  Task t = make_task(1, 10.0);  // no bandwidth, min_security 0
  EXPECT_TRUE(h.can_accept(t));
  EXPECT_TRUE(h.try_enqueue(t));
  EXPECT_DOUBLE_EQ(h.bandwidth_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(h.bottleneck_occupancy(), h.occupancy());
}

// Conservation property: whatever is admitted is eventually completed,
// and total completed work equals the sum of admitted sizes.
class HostConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostConservation, AdmittedWorkConserved) {
  sim::Engine e;
  Host h(e, 0, 50.0);
  RngStream rng(GetParam(), "host-prop");
  double admitted_work = 0.0;
  std::uint64_t admitted = 0;
  SimTime t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.exponential(2.0);
    const double size = rng.exponential(5.0);
    e.schedule_at(t, [&, size, i] {
      if (h.try_enqueue(make_task(static_cast<TaskId>(i), size))) {
        admitted_work += size;
        ++admitted;
      }
    });
  }
  e.run();
  EXPECT_EQ(h.completed_count(), admitted);
  EXPECT_NEAR(h.completed_work_seconds(), admitted_work, 1e-6);
  EXPECT_NEAR(h.backlog_seconds(), 0.0, 1e-9);  // float residue only
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostConservation,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u));

// Property: occupancy never exceeds 1 regardless of arrival pattern.
class HostBoundedness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostBoundedness, OccupancyNeverExceedsOne) {
  sim::Engine e;
  Host h(e, 0, 20.0);
  RngStream rng(GetParam(), "bound-prop");
  h.set_status_listener([&](const Host& host) {
    ASSERT_LE(host.occupancy(), 1.0 + 1e-9);
    ASSERT_GE(host.occupancy(), 0.0);
  });
  SimTime t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.exponential(0.5);  // heavy overload
    const double size = rng.exponential(5.0);
    e.schedule_at(t, [&, size, i] {
      h.try_enqueue(make_task(static_cast<TaskId>(i), size));
    });
  }
  e.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostBoundedness,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace realtor::node
