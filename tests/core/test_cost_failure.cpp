#include <gtest/gtest.h>

#include "net/cost_model.hpp"
#include "net/failure.hpp"
#include "net/message_ledger.hpp"

namespace realtor::net {
namespace {

TEST(CostModel, PaperAccountingOnMesh) {
  const Topology mesh = make_mesh(5, 5);
  const CostModel model(mesh, CostMode::kPaperAverage, 4.0);
  // §5: "HELP message requires the number of links for flooding, while
  // PLEDGE message takes the average number of shortest paths, which is 4".
  EXPECT_DOUBLE_EQ(model.flood_cost(), 40.0);
  EXPECT_DOUBLE_EQ(model.unicast_cost(0, 24), 4.0);
  EXPECT_DOUBLE_EQ(model.unicast_cost(0, 1), 4.0);  // averaged, not exact
}

TEST(CostModel, AverageModeWithoutPinUsesComputedMean) {
  const Topology mesh = make_mesh(5, 5);
  const CostModel model(mesh, CostMode::kPaperAverage);
  EXPECT_NEAR(model.unicast_cost(0, 1), 10.0 / 3.0, 1e-9);
}

TEST(CostModel, ExactModeUsesHopDistance) {
  const Topology mesh = make_mesh(5, 5);
  const CostModel model(mesh, CostMode::kExactHops);
  EXPECT_DOUBLE_EQ(model.unicast_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.unicast_cost(0, 24), 8.0);
}

TEST(CostModel, FloodCostShrinksWhenNodesDie) {
  Topology mesh = make_mesh(5, 5);
  const CostModel model(mesh, CostMode::kPaperAverage, 4.0);
  EXPECT_DOUBLE_EQ(model.flood_cost(), 40.0);
  mesh.set_alive(12, false);  // center has 4 links
  EXPECT_DOUBLE_EQ(model.flood_cost(), 36.0);
}

TEST(CostModel, ExactModeRefreshesAfterLivenessChange) {
  Topology mesh = make_mesh(3, 3);
  const CostModel model(mesh, CostMode::kExactHops);
  EXPECT_DOUBLE_EQ(model.unicast_cost(3, 5), 2.0);
  mesh.set_alive(4, false);
  EXPECT_DOUBLE_EQ(model.unicast_cost(3, 5), 4.0);  // detour
}

TEST(MessageLedger, RecordsAndTotals) {
  MessageLedger ledger;
  ledger.record(MessageKind::kHelp, 40.0);
  ledger.record(MessageKind::kPledge, 4.0, 3);
  ledger.record(MessageKind::kMigration, 4.0);
  EXPECT_EQ(ledger.sends(MessageKind::kHelp), 1u);
  EXPECT_EQ(ledger.sends(MessageKind::kPledge), 3u);
  EXPECT_DOUBLE_EQ(ledger.cost(MessageKind::kHelp), 40.0);
  EXPECT_DOUBLE_EQ(ledger.total_cost(), 48.0);
  // Overhead excludes the migration payload.
  EXPECT_DOUBLE_EQ(ledger.overhead_cost(), 44.0);
  EXPECT_EQ(ledger.total_sends(), 5u);
}

TEST(MessageLedger, MergeAndReset) {
  MessageLedger a, b;
  a.record(MessageKind::kHelp, 40.0);
  b.record(MessageKind::kHelp, 40.0);
  b.record(MessageKind::kNegotiation, 8.0);
  a.merge(b);
  EXPECT_EQ(a.sends(MessageKind::kHelp), 2u);
  EXPECT_DOUBLE_EQ(a.total_cost(), 88.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total_cost(), 0.0);
  EXPECT_EQ(a.total_sends(), 0u);
}

TEST(MessageLedger, SnapshotIsAValueCopy) {
  MessageLedger ledger;
  ledger.record(MessageKind::kHelp, 40.0);
  ledger.record(MessageKind::kPledge, 4.0, 3);
  ledger.record(MessageKind::kMigration, 4.0);
  const LedgerSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.sends_of(MessageKind::kPledge), 3u);
  EXPECT_DOUBLE_EQ(snap.cost_of(MessageKind::kHelp), 40.0);
  EXPECT_EQ(snap.total_sends, 5u);
  EXPECT_DOUBLE_EQ(snap.total_cost, 48.0);
  EXPECT_DOUBLE_EQ(snap.overhead_cost, 44.0);
  // The snapshot must not track the live ledger.
  ledger.record(MessageKind::kGossip, 10.0);
  EXPECT_EQ(snap.sends_of(MessageKind::kGossip), 0u);
  EXPECT_DOUBLE_EQ(snap.total_cost, 48.0);
}

// merge() of a populated ledger into a reset() one must reproduce the
// original exactly, for every MessageKind — the property sweep aggregation
// relies on.
TEST(MessageLedger, MergeAfterResetRoundTripsEveryKind) {
  MessageLedger original;
  for (std::size_t i = 0; i < static_cast<std::size_t>(MessageKind::kCount);
       ++i) {
    const auto kind = static_cast<MessageKind>(i);
    original.record(kind, 1.5 * static_cast<double>(i + 1),
                    static_cast<std::uint64_t>(i + 1));
  }
  MessageLedger target;
  target.record(MessageKind::kHelp, 99.0);  // stale state to wipe
  target.reset();
  target.merge(original);
  const LedgerSnapshot a = original.snapshot();
  const LedgerSnapshot b = target.snapshot();
  for (std::size_t i = 0; i < static_cast<std::size_t>(MessageKind::kCount);
       ++i) {
    const auto kind = static_cast<MessageKind>(i);
    EXPECT_EQ(b.sends_of(kind), a.sends_of(kind)) << to_string(kind);
    EXPECT_DOUBLE_EQ(b.cost_of(kind), a.cost_of(kind)) << to_string(kind);
  }
  EXPECT_EQ(b.total_sends, a.total_sends);
  EXPECT_DOUBLE_EQ(b.total_cost, a.total_cost);
  EXPECT_DOUBLE_EQ(b.overhead_cost, a.overhead_cost);
}

TEST(MessageLedger, KindNames) {
  EXPECT_STREQ(to_string(MessageKind::kHelp), "HELP");
  EXPECT_STREQ(to_string(MessageKind::kPledge), "PLEDGE");
  EXPECT_STREQ(to_string(MessageKind::kPushAdvert), "PUSH");
  EXPECT_STREQ(to_string(MessageKind::kNegotiation), "NEGOTIATION");
  EXPECT_STREQ(to_string(MessageKind::kMigration), "MIGRATION");
}

TEST(FailureInjector, KillAndRestoreFlipLiveness) {
  sim::Engine engine;
  Topology mesh = make_mesh(3, 3);
  FailureInjector injector(engine, mesh);
  injector.schedule_kill(4, 10.0);
  injector.schedule_restore(4, 20.0);
  engine.run_until(15.0);
  EXPECT_FALSE(mesh.alive(4));
  engine.run_until(25.0);
  EXPECT_TRUE(mesh.alive(4));
  EXPECT_EQ(injector.kills(), 1u);
  EXPECT_EQ(injector.restores(), 1u);
}

TEST(FailureInjector, ListenersNotified) {
  sim::Engine engine;
  Topology mesh = make_mesh(3, 3);
  FailureInjector injector(engine, mesh);
  std::vector<std::pair<NodeId, bool>> events;
  injector.add_listener([&](NodeId n, bool alive) {
    events.emplace_back(n, alive);
  });
  injector.schedule_kill(2, 1.0);
  injector.schedule_restore(2, 2.0);
  engine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<NodeId, bool>{2, false}));
  EXPECT_EQ(events[1], (std::pair<NodeId, bool>{2, true}));
}

TEST(FailureInjector, DuplicateKillIsIdempotent) {
  sim::Engine engine;
  Topology mesh = make_mesh(3, 3);
  FailureInjector injector(engine, mesh);
  int notifications = 0;
  injector.add_listener([&](NodeId, bool) { ++notifications; });
  injector.schedule_kill(2, 1.0);
  injector.schedule_kill(2, 1.5);
  engine.run();
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(injector.kills(), 1u);
}

TEST(FailureInjector, AttackWaveRespectsSparedAndCount) {
  sim::Engine engine;
  Topology mesh = make_mesh(5, 5);
  FailureInjector injector(engine, mesh);
  RngStream rng(5, "attack");
  const std::vector<NodeId> spared{0, 1, 2};
  const auto victims =
      injector.schedule_attack_wave(10, 5.0, 20.0, rng, spared);
  EXPECT_EQ(victims.size(), 10u);
  for (const NodeId v : victims) {
    for (const NodeId s : spared) {
      EXPECT_NE(v, s);
    }
  }
  engine.run_until(6.0);
  EXPECT_EQ(mesh.alive_count(), 15u);
  engine.run_until(30.0);
  EXPECT_EQ(mesh.alive_count(), 25u);
}

TEST(FailureInjector, AttackWaveVictimsDistinct) {
  sim::Engine engine;
  Topology mesh = make_mesh(5, 5);
  FailureInjector injector(engine, mesh);
  RngStream rng(5, "attack");
  const auto victims = injector.schedule_attack_wave(25, 1.0, 0.0, rng);
  std::set<NodeId> unique(victims.begin(), victims.end());
  EXPECT_EQ(unique.size(), 25u);
}

}  // namespace
}  // namespace realtor::net
