#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace realtor {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, AdjacentSeedsStillDecorrelated) {
  // SplitMix64 seeding must separate seed and seed+1.
  Xoshiro256 a(41), b(42);
  EXPECT_NE(a(), b());
}

TEST(RngStream, NamedStreamsAreIndependent) {
  RngStream a(99, "arrivals");
  RngStream b(99, "task-sizes");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngStream, SameNameSameSeedReproduces) {
  RngStream a(123, "x");
  RngStream b(123, "x");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(5, "u");
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngStream, Uniform01MeanNearHalf) {
  RngStream rng(5, "u");
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, UniformIndexCoversAllValuesWithoutBias) {
  RngStream rng(5, "idx");
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngStream, UniformIndexOfOneIsZero) {
  RngStream rng(5, "idx");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(RngStream, ExponentialMeanMatches) {
  RngStream rng(5, "exp");
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  // Standard error of the mean is 5/sqrt(n) ~ 0.011.
  EXPECT_NEAR(sum / n, 5.0, 0.08);
}

TEST(RngStream, ExponentialIsPositive) {
  RngStream rng(5, "exp");
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.exponential(0.001), 0.0);
  }
}

TEST(RngStream, BernoulliFrequencyMatches) {
  RngStream rng(17, "coin");
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(HashName, DistinctNamesDistinctHashes) {
  std::set<std::uint64_t> hashes;
  for (const char* name :
       {"a", "b", "ab", "ba", "arrivals", "task-sizes", "placement", ""}) {
    hashes.insert(hash_name(name));
  }
  EXPECT_EQ(hashes.size(), 8u);
}

class ExponentialMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanTest, MeanTracksParameter) {
  const double mean = GetParam();
  RngStream rng(11, "sweep");
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 50.0));

}  // namespace
}  // namespace realtor
