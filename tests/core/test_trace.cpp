#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sim/engine.hpp"

namespace realtor::obs {
namespace {

TEST(TraceEvent, FluentPayloadTypes) {
  TraceEvent event(2.5, 3, EventKind::kHelpSent);
  event.with("urgency", 0.75)
      .with("members", std::uint32_t{7})
      .with("answered", true)
      .with("reason", "timeout");
  ASSERT_EQ(event.field_count, 4u);
  EXPECT_EQ(event.fields[0].type, TraceField::Type::kDouble);
  EXPECT_DOUBLE_EQ(event.fields[0].d, 0.75);
  EXPECT_EQ(event.fields[1].type, TraceField::Type::kUint);
  EXPECT_EQ(event.fields[1].u, 7u);
  EXPECT_EQ(event.fields[2].type, TraceField::Type::kBool);
  EXPECT_TRUE(event.fields[2].b);
  EXPECT_EQ(event.fields[3].type, TraceField::Type::kString);
  EXPECT_STREQ(event.fields[3].s, "timeout");
}

TEST(TraceEvent, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventKind::kCount);
       ++i) {
    const EventKind kind = static_cast<EventKind>(i);
    EventKind parsed = EventKind::kCount;
    ASSERT_TRUE(parse_event_kind(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed;
  EXPECT_FALSE(parse_event_kind("no_such_kind", parsed));
}

// The null-sink contract: an inert tracer reports inactive and emitting
// through it is a no-op, so instrumented code pays one pointer test.
TEST(Tracer, NullSinkIsInert) {
  Tracer tracer;
  EXPECT_FALSE(tracer.active());
  tracer.emit(TraceEvent(1.0, 0, EventKind::kSolicit));  // must not crash
  tracer.flush();

  MemorySink sink;
  tracer.set_sink(&sink);
  EXPECT_TRUE(tracer.active());
  tracer.emit(TraceEvent(1.0, 0, EventKind::kSolicit));
  tracer.set_sink(nullptr);
  EXPECT_FALSE(tracer.active());
  tracer.emit(TraceEvent(2.0, 0, EventKind::kSolicit));
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(MemorySink, CountsAndFilters) {
  MemorySink sink;
  sink.on_event(TraceEvent(1.0, 0, EventKind::kHelpSent));
  sink.on_event(TraceEvent(2.0, 1, EventKind::kPledgeSent));
  sink.on_event(TraceEvent(3.0, 0, EventKind::kHelpSent));
  EXPECT_EQ(sink.count(EventKind::kHelpSent), 2u);
  EXPECT_EQ(sink.count(EventKind::kPledgeSent), 1u);
  EXPECT_EQ(sink.count(EventKind::kGossipRound), 0u);
  const auto of_zero = sink.events_of(0);
  ASSERT_EQ(of_zero.size(), 2u);
  EXPECT_DOUBLE_EQ(of_zero[0].time, 1.0);
  EXPECT_DOUBLE_EQ(of_zero[1].time, 3.0);
}

TEST(JsonlFormat, PlainRecord) {
  TraceEvent event(12.5, 3, EventKind::kHelpSent);
  event.with("urgency", 1.0).with("members", 7);
  EXPECT_EQ(format_jsonl(event),
            R"({"t":12.5,"node":3,"kind":"help_sent","urgency":1,"members":7})");
}

TEST(JsonlFormat, SystemRecordOmitsNode) {
  TraceEvent event(0.0, kInvalidNode, EventKind::kEngineStep);
  event.with("processed", std::uint64_t{1000});
  EXPECT_EQ(format_jsonl(event),
            R"({"t":0,"kind":"engine_step","processed":1000})");
}

TEST(JsonlFormat, EscapesStrings) {
  TraceEvent event(1.0, 0, EventKind::kSystemSample);
  event.with("name", "a\"b\\c\n\td\x01");
  EXPECT_EQ(format_jsonl(event),
            "{\"t\":1,\"node\":0,\"kind\":\"system_sample\","
            "\"name\":\"a\\\"b\\\\c\\n\\td\\u0001\"}");
}

TEST(JsonlFormat, NonFiniteDoublesAreQuoted) {
  TraceEvent event(1.0, 0, EventKind::kNodeSample);
  event.with("bad", std::numeric_limits<double>::quiet_NaN())
      .with("inf", std::numeric_limits<double>::infinity());
  const std::string line = format_jsonl(event);
  EXPECT_NE(line.find("\"bad\":\"nan\""), std::string::npos);
  EXPECT_NE(line.find("\"inf\":\"inf\""), std::string::npos);
  // And the reader still accepts the line.
  ParsedEvent parsed;
  EXPECT_TRUE(parse_jsonl_line(line, parsed));
}

TEST(JsonlSink, WritesOneLinePerEvent) {
  std::ostringstream out;
  JsonlSink sink(out);
  ASSERT_TRUE(sink.ok());
  sink.on_event(TraceEvent(1.0, 0, EventKind::kHelpSent));
  sink.on_event(TraceEvent(2.0, 1, EventKind::kPledgeSent));
  sink.flush();
  EXPECT_EQ(sink.lines_written(), 2u);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(TraceReader, RoundTripsFormattedEvents) {
  TraceEvent event(3.25, 9, EventKind::kPledgeReceived);
  event.with("pledger", 4).with("availability", 0.625).with("fresh", true);
  ParsedEvent parsed;
  std::string error;
  ASSERT_TRUE(parse_jsonl_line(format_jsonl(event), parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(parsed.time, 3.25);
  EXPECT_EQ(parsed.node, 9u);
  EXPECT_EQ(parsed.kind, "pledge_received");
  EXPECT_DOUBLE_EQ(parsed.number("pledger"), 4.0);
  EXPECT_DOUBLE_EQ(parsed.number("availability"), 0.625);
  const JsonValue* fresh = parsed.find("fresh");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->type, JsonValue::Type::kBool);
  EXPECT_TRUE(fresh->boolean);
  EXPECT_EQ(parsed.find("absent"), nullptr);
  EXPECT_DOUBLE_EQ(parsed.number("absent", -1.0), -1.0);
}

TEST(TraceReader, RejectsMalformedLinesWithPosition) {
  ParsedEvent parsed;
  std::string error;
  EXPECT_FALSE(parse_jsonl_line("not json", parsed, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(parse_jsonl_line(R"({"node":1,"kind":"solicit"})", parsed,
                                &error));  // missing "t"
  EXPECT_FALSE(parse_jsonl_line(R"({"t":1.0,"node":2})", parsed,
                                &error));  // missing "kind"
}

TEST(TraceReader, LoadsFileAndReportsBadLineNumber) {
  const std::string path =
      ::testing::TempDir() + "realtor_trace_reader_test.jsonl";
  {
    std::ofstream out(path);
    out << format_jsonl(TraceEvent(1.0, 0, EventKind::kHelpSent)) << '\n';
    out << '\n';  // blank lines are tolerated
    out << format_jsonl(TraceEvent(2.0, 1, EventKind::kPledgeSent)) << '\n';
  }
  std::vector<ParsedEvent> events;
  std::string error;
  ASSERT_TRUE(load_trace_file(path, events, &error)) << error;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, "pledge_sent");

  {
    std::ofstream out(path, std::ios::app);
    out << "{broken\n";
  }
  events.clear();
  EXPECT_FALSE(load_trace_file(path, events, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TraceReader, TolerantLoadCountsMalformedLinesInsteadOfAborting) {
  const std::string path =
      ::testing::TempDir() + "realtor_trace_tolerant_test.jsonl";
  {
    std::ofstream out(path);
    out << format_jsonl(TraceEvent(1.0, 0, EventKind::kHelpSent)) << '\n';
    out << "{truncated mid-write\n";  // e.g. a crash cut the line short
    out << format_jsonl(TraceEvent(2.0, 1, EventKind::kPledgeSent)) << '\n';
    out << "also not json\n";
  }
  std::vector<ParsedEvent> events;
  TraceLoadStats stats;
  std::string error;
  ASSERT_TRUE(load_trace_file(path, events, stats, &error)) << error;
  // Every parsable event survives; nothing is silently dropped.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, "pledge_sent");
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.first_malformed_line, 2u);
  EXPECT_FALSE(stats.first_error.empty());
  std::remove(path.c_str());

  // Only an unreadable path fails the tolerant variant.
  EXPECT_FALSE(load_trace_file(path, events, stats, &error));
}

TEST(JsonlSink, BufferedModeKeepsOrderAndFlushDrains) {
  // Write the same events through a write-through sink and a buffered
  // one: the flush guarantee says the outputs are identical after
  // flush(), batching only changes when bytes move.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i) {
    TraceEvent event(static_cast<double>(i), static_cast<NodeId>(i % 3),
                     EventKind::kGossipRound);
    event.with("seq", i);
    events.push_back(event);
  }

  std::ostringstream direct_out;
  JsonlSink direct(direct_out);
  for (const TraceEvent& event : events) direct.on_event(event);

  std::ostringstream buffered_out;
  JsonlSink buffered(buffered_out, /*flush_every=*/4);
  for (std::size_t i = 0; i < events.size(); ++i) {
    buffered.on_event(events[i]);
    if (i == 2) {
      // Not yet a full batch: nothing has reached the stream.
      EXPECT_TRUE(buffered_out.str().empty());
    }
    if (i == 4) {
      // One full batch (4 lines) drained; the 5th is still pending.
      const std::string drained = buffered_out.str();
      EXPECT_EQ(std::count(drained.begin(), drained.end(), '\n'), 4);
    }
  }
  EXPECT_EQ(buffered.lines_written(), 10u);
  buffered.flush();  // drains the partial tail batch
  EXPECT_EQ(buffered_out.str(), direct_out.str());
}

TEST(MetricsRegistry, FindOrCreateKeepsReferencesStable) {
  Registry registry;
  Counter& admitted = registry.counter("tasks.admitted");
  admitted.add(3);
  EXPECT_EQ(&registry.counter("tasks.admitted"), &admitted);
  EXPECT_EQ(registry.counter("tasks.admitted").value(), 3u);
  registry.gauge("occupancy.mean").set(0.5);
  registry.histogram("response").observe(2.0);
  registry.histogram("response").observe(4.0);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, FlattensCountersGaugesThenHistograms) {
  Registry registry;
  registry.histogram("h").observe(1.0);
  registry.histogram("h").observe(3.0);
  registry.gauge("g").set(7.0);
  registry.counter("c").add(2);
  registry.histogram("empty");  // no observations: skipped entirely
  std::vector<std::pair<std::string, double>> flat;
  registry.for_each([&](const std::string& name, double value) {
    flat.emplace_back(name, value);
  });
  ASSERT_EQ(flat.size(), 9u);
  EXPECT_EQ(flat[0].first, "c");
  EXPECT_DOUBLE_EQ(flat[0].second, 2.0);
  EXPECT_EQ(flat[1].first, "g");
  EXPECT_DOUBLE_EQ(flat[1].second, 7.0);
  EXPECT_EQ(flat[2].first, "h.count");
  EXPECT_DOUBLE_EQ(flat[2].second, 2.0);
  EXPECT_EQ(flat[3].first, "h.mean");
  EXPECT_DOUBLE_EQ(flat[3].second, 2.0);
  EXPECT_EQ(flat[4].first, "h.min");
  EXPECT_DOUBLE_EQ(flat[4].second, 1.0);
  EXPECT_EQ(flat[5].first, "h.max");
  EXPECT_DOUBLE_EQ(flat[5].second, 3.0);
  EXPECT_EQ(flat[6].first, "h.p50");
  EXPECT_DOUBLE_EQ(flat[6].second, 2.0);  // midpoint of {1, 3}
  EXPECT_EQ(flat[7].first, "h.p90");
  EXPECT_EQ(flat[8].first, "h.p99");
  EXPECT_DOUBLE_EQ(flat[8].second, 2.98);  // interpolated toward max
}

TEST(HistogramQuantiles, ExactWithinReservoir) {
  Histogram histogram;
  // 1..100 shuffled deterministically: quantiles must come out exact.
  for (int i = 0; i < 100; ++i) {
    histogram.observe(static_cast<double>((i * 37) % 100 + 1));
  }
  EXPECT_TRUE(histogram.exact());
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(histogram.p50(), 50.5);
  EXPECT_NEAR(histogram.p90(), 90.1, 1e-9);
  EXPECT_NEAR(histogram.p99(), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(histogram.quantile(-0.5), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(histogram.quantile(2.0), 100.0);
}

TEST(HistogramQuantiles, EmptyAndSingle) {
  Histogram histogram;
  // Empty: no defined quantile anywhere on [0, 1] — report 0.
  EXPECT_DOUBLE_EQ(histogram.p50(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.0);
  // One sample IS every quantile, extremes included.
  histogram.observe(4.25);
  EXPECT_DOUBLE_EQ(histogram.p50(), 4.25);
  EXPECT_DOUBLE_EQ(histogram.p99(), 4.25);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 4.25);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 4.25);
  histogram.reset();
  EXPECT_DOUBLE_EQ(histogram.p50(), 0.0);
  EXPECT_EQ(histogram.stats().count(), 0u);
}

TEST(HistogramQuantiles, ReservoirSubsamplingIsDeterministic) {
  Histogram a(64);
  Histogram b(64);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 131) % 1000);
    a.observe(v);
    b.observe(v);
  }
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.reservoir_size(), 64u);
  // Same observation sequence -> identical reservoir -> identical
  // quantiles (the subsampling RNG is internal and seed-fixed).
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  // And the estimate stays inside the observed range.
  EXPECT_GE(a.p50(), a.stats().min());
  EXPECT_LE(a.p50(), a.stats().max());
}

// Satellite: Counter/Gauge must tolerate concurrent updates from the
// Agile reactor threads without torn or lost counts.
TEST(MetricsAtomicity, ConcurrentCounterAddsAreLossless) {
  Counter counter;
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &gauge, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.add();
        gauge.set(static_cast<double>(t));
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  // The gauge holds whichever thread wrote last — any of them, untorn.
  const double last = gauge.value();
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, static_cast<double>(kThreads));
}

TEST(Sampler, TicksAtIntervalAndFlattensRegistry) {
  sim::Engine engine;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  Registry registry;
  registry.counter("sent").add(5);
  Sampler sampler(engine, 10.0, tracer, &registry);
  int probed = 0;
  sampler.add_probe([&](SimTime) { ++probed; });
  sampler.start();
  engine.run_until(35.0);
  EXPECT_EQ(sampler.ticks(), 3u);
  EXPECT_EQ(probed, 3);
  ASSERT_EQ(sink.count(EventKind::kSystemSample), 3u);
  const TraceEvent& sample = sink.events().front();
  ASSERT_EQ(sample.field_count, 2u);
  EXPECT_STREQ(sample.fields[0].s, "sent");
  EXPECT_DOUBLE_EQ(sample.fields[1].d, 5.0);
}

// Cadence edge cases around Sampler::finish() — the last-sample-at-end
// contract the live plane's final exposition snapshot depends on.
TEST(Sampler, IntervalLongerThanHorizonStillSamplesAtEnd) {
  sim::Engine engine;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  Registry registry;
  registry.counter("sent").add(1);
  Sampler sampler(engine, 50.0, tracer, &registry);
  sampler.start();
  engine.run_until(30.0);
  // No interval boundary fits inside the horizon...
  EXPECT_EQ(sink.count(EventKind::kSystemSample), 0u);
  // ...so the final flush is the only gauge record the run gets.
  sampler.finish(30.0);
  EXPECT_EQ(sink.count(EventKind::kSystemSample), 1u);
  EXPECT_DOUBLE_EQ(sampler.last_tick(), 30.0);
  EXPECT_DOUBLE_EQ(sink.events().back().time, 30.0);
}

TEST(Sampler, NonDividingIntervalGetsAFinalPartialSample) {
  sim::Engine engine;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  Registry registry;
  registry.counter("sent").add(1);
  Sampler sampler(engine, 10.0, tracer, &registry);
  sampler.start();
  engine.run_until(35.0);
  EXPECT_EQ(sampler.ticks(), 3u);  // 10, 20, 30
  sampler.finish(35.0);
  EXPECT_EQ(sampler.ticks(), 4u);  // + the 35.0 tail
  ASSERT_EQ(sink.count(EventKind::kSystemSample), 4u);
  EXPECT_DOUBLE_EQ(sink.events().back().time, 35.0);
}

TEST(Sampler, FinishIsIdempotentAndSkipsAlignedHorizons) {
  sim::Engine engine;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  Registry registry;
  registry.counter("sent").add(1);
  Sampler sampler(engine, 10.0, tracer, &registry);
  sampler.start();
  engine.run_until(30.0);
  // run_until is inclusive: the tick scheduled at exactly t=30 fired, so
  // finish(30) must not double-sample the horizon...
  EXPECT_EQ(sampler.ticks(), 3u);
  sampler.finish(30.0);
  EXPECT_EQ(sampler.ticks(), 3u);
  // ...and a second finish at the same instant stays a no-op.
  sampler.finish(30.0);
  EXPECT_EQ(sampler.ticks(), 3u);
  EXPECT_EQ(sink.count(EventKind::kSystemSample), 3u);
}

TEST(Sampler, ReArmsAcrossDrainedStretches) {
  sim::Engine engine;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  Registry registry;
  registry.counter("sent").add(1);
  Sampler sampler(engine, 10.0, tracer, &registry);
  sampler.start();
  // Drain the queue in two bursts: the tick must keep rescheduling itself
  // through the first drain so the second stretch still gets sampled.
  engine.run_until(15.0);
  EXPECT_EQ(sampler.ticks(), 1u);
  engine.run_until(45.0);
  EXPECT_EQ(sampler.ticks(), 4u);  // 10, 20, 30, 40
  EXPECT_DOUBLE_EQ(sampler.last_tick(), 40.0);
  // finish() after the fast-forward closes out the tail as usual.
  sampler.finish(45.0);
  EXPECT_EQ(sampler.ticks(), 5u);
}

TEST(LogSinkSatellite, CapturesAndRestores) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  LogSink previous = set_log_sink([&](LogLevel level,
                                      const std::string& line) {
    captured.emplace_back(level, line);
  });
  REALTOR_INFO("hello " << 42);
  REALTOR_DEBUG("filtered out");
  set_log_sink(std::move(previous));
  set_log_level(before);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 42");
  REALTOR_ERROR("back on stderr, not the dead capture");  // must not crash
}

}  // namespace
}  // namespace realtor::obs
