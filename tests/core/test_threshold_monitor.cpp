#include <gtest/gtest.h>

#include "node/host.hpp"
#include "node/monitor.hpp"
#include "node/threshold.hpp"
#include "sim/engine.hpp"

namespace realtor::node {
namespace {

TEST(ThresholdDetector, FirstSampleNeverCrosses) {
  ThresholdDetector d(0.9);
  EXPECT_EQ(d.update(0.95), Crossing::kNone);
  EXPECT_TRUE(d.above());
  EXPECT_TRUE(d.primed());
}

TEST(ThresholdDetector, DetectsUpAndDown) {
  ThresholdDetector d(0.9);
  d.update(0.5);
  EXPECT_EQ(d.update(0.95), Crossing::kUp);
  EXPECT_EQ(d.update(0.99), Crossing::kNone);
  EXPECT_EQ(d.update(0.2), Crossing::kDown);
  EXPECT_EQ(d.update(0.1), Crossing::kNone);
}

TEST(ThresholdDetector, ExactThresholdCountsAsAbove) {
  ThresholdDetector d(0.9);
  d.update(0.5);
  EXPECT_EQ(d.update(0.9), Crossing::kUp);
}

TEST(ThresholdDetector, ResetForgetsState) {
  ThresholdDetector d(0.9);
  d.update(0.95);
  d.reset();
  EXPECT_FALSE(d.primed());
  EXPECT_EQ(d.update(0.95), Crossing::kNone);
}

TEST(ThresholdDetector, OscillationProducesAlternatingCrossings) {
  ThresholdDetector d(0.5);
  d.update(0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.update(0.6), Crossing::kUp);
    EXPECT_EQ(d.update(0.4), Crossing::kDown);
  }
}

TEST(UtilizationMonitor, TracksBusyFraction) {
  sim::Engine e;
  Host h(e, 0, 100.0);
  UtilizationMonitor m;
  h.set_status_listener([&](const Host& host) { m.sample(e.now(), host); });
  Task t;
  t.id = 1;
  t.size_seconds = 5.0;
  h.try_enqueue(t);
  e.run();           // busy on [0,5)
  e.run_until(10.0); // idle on [5,10)
  m.sample(10.0, h);
  EXPECT_NEAR(m.utilization(10.0), 0.5, 1e-9);
}

TEST(UtilizationMonitor, TracksAverageOccupancy) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  UtilizationMonitor m;
  h.set_status_listener([&](const Host& host) { m.sample(e.now(), host); });
  Task t;
  t.id = 1;
  t.size_seconds = 10.0;
  h.try_enqueue(t);  // occupancy starts at 1.0 and drains linearly
  e.run();
  m.sample(10.0, h);
  // Sampled occupancy is piecewise-constant between events (1.0 until the
  // completion event), so the time-weighted average here is 1.0.
  EXPECT_NEAR(m.average_occupancy(10.0), 1.0, 1e-9);
  EXPECT_EQ(m.occupancy_samples().count(), 3u);  // enqueue + completion + final
}

TEST(UtilizationMonitor, ResetClears) {
  sim::Engine e;
  Host h(e, 0, 10.0);
  UtilizationMonitor m;
  m.sample(0.0, h);
  m.reset();
  EXPECT_EQ(m.occupancy_samples().count(), 0u);
  EXPECT_DOUBLE_EQ(m.utilization(5.0), 0.0);
}

}  // namespace
}  // namespace realtor::node
