// The trace invariant checker: clean passes over real runs of all six
// protocols, and a named violation for each synthetic break of the
// catalog.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "obs/invariants.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "proto/factory.hpp"

namespace realtor::obs {
namespace {

using experiment::AttackWave;
using experiment::ScenarioConfig;
using experiment::Simulation;

ScenarioConfig overloaded_scenario(proto::ProtocolKind kind) {
  ScenarioConfig config;
  config.protocol_kind = kind;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.sample_interval = 20.0;
  config.attacks.push_back(AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

std::vector<std::string> violated_names(
    const std::vector<Violation>& violations) {
  std::vector<std::string> names;
  for (const Violation& violation : violations) {
    names.emplace_back(violation.invariant);
  }
  return names;
}

SpanEvent make(SimTime time, NodeId node, EventKind kind) {
  SpanEvent event;
  event.time = time;
  event.node = node;
  event.kind = kind;
  return event;
}

// Every scheme — pull, push and gossip — must produce a trace the whole
// catalog accepts: the checker's exemptions (episode-0 pledges, episode-0
// migrations) have to line up with what the protocols actually emit.
TEST(Invariants, CleanOnAllSixProtocolsUnderAttack) {
  for (const proto::ProtocolKind kind : proto::kExtendedProtocolKinds) {
    Simulation sim(overloaded_scenario(kind));
    MemorySink sink;
    sim.set_trace_sink(&sink);
    sim.run();
    const std::vector<Violation> violations =
        check_invariants(sink.events());
    EXPECT_TRUE(violations.empty())
        << proto::to_string(kind) << ": first violation "
        << violations.front().invariant << " at t=" << violations.front().time
        << " (" << violations.front().detail << ")";
  }
}

TEST(Invariants, EmptyTraceIsClean) {
  EXPECT_TRUE(check_invariants(std::vector<SpanEvent>{}).empty());
}

TEST(Invariants, FlagsIntervalOutOfBounds) {
  SpanEvent event = make(1.0, 2, EventKind::kHelpInterval);
  event.interval = 250.0;  // above help_upper_limit = 100
  const auto violations = check_invariants({event});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(std::string(violations.front().invariant),
            "help_interval_bounds");
  EXPECT_EQ(violations.front().node, 2u);

  SpanEvent low = make(1.0, 2, EventKind::kHelpInterval);
  low.interval = 0.01;  // below help_interval_floor = 0.1
  const auto low_violations = check_invariants({low});
  ASSERT_FALSE(low_violations.empty());
  EXPECT_EQ(std::string(low_violations.front().invariant),
            "help_interval_bounds");
}

TEST(Invariants, FlagsArbitraryIntervalJump) {
  // From the initial 1.0, legal next values are 2.0 (alpha grow) or 0.5
  // (beta shrink); 3.7 is neither.
  SpanEvent event = make(5.0, 1, EventKind::kHelpInterval);
  event.interval = 3.7;
  const auto violations = check_invariants({event});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant), "help_interval_step");
  EXPECT_NE(violations.front().detail.find("3.7"), std::string::npos);
}

TEST(Invariants, AcceptsLegalIntervalWalk) {
  // 1 -> 2 -> 4 (timeouts) -> 2 (reward) -> 1 -> 0.5 -> 0.25 -> 0.125 ->
  // 0.1 (floored) stays clean, including the cap at the upper limit.
  std::vector<SpanEvent> events;
  const double walk[] = {2.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.125, 0.1, 0.1};
  double t = 1.0;
  for (const double interval : walk) {
    SpanEvent event = make(t, 4, EventKind::kHelpInterval);
    event.interval = interval;
    events.push_back(event);
    t += 1.0;
  }
  EXPECT_TRUE(check_invariants(events).empty());
}

TEST(Invariants, FlagsSolicitedPledgeFromOverloadedSender) {
  SpanEvent event = make(2.0, 7, EventKind::kPledgeSent);
  event.episode = 4;
  event.availability = 0.02;  // occupancy 0.98 > pledge_threshold 0.9
  const auto violations = check_invariants({event});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant),
            "solicited_pledge_threshold");

  // The same availability with episode 0 is the deliberate crossing-up
  // status update of Fig. 3 — exempt.
  event.episode = 0;
  EXPECT_TRUE(check_invariants({event}).empty());
}

TEST(Invariants, FlagsMigrationWithoutPriorPledge) {
  SpanEvent help = make(1.0, 3, EventKind::kHelpSent);
  help.episode = 1;
  SpanEvent migration = make(2.0, 3, EventKind::kMigrationSuccess);
  migration.episode = 1;
  migration.peer = 11;  // no pledge_received from 11 beforehand
  const auto violations = check_invariants({help, migration});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant),
            "migration_has_pledge");

  // With the pledge in front the chain is causal and clean.
  SpanEvent pledge = make(1.5, 3, EventKind::kPledgeReceived);
  pledge.episode = 1;
  pledge.peer = 11;
  EXPECT_TRUE(check_invariants({help, pledge, migration}).empty());

  // Episode-0 migrations (push/gossip candidate tables) are exempt.
  migration.episode = 0;
  EXPECT_TRUE(check_invariants({migration}).empty());
}

TEST(Invariants, FlagsExpireWithoutJoin) {
  SpanEvent expire = make(9.0, 5, EventKind::kCommunityExpire);
  expire.peer = 2;  // organizer
  const auto violations = check_invariants({expire});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant),
            "community_expire_has_join");

  SpanEvent join = make(1.0, 5, EventKind::kCommunityJoin);
  join.peer = 2;
  EXPECT_TRUE(check_invariants({join, expire}).empty());
  // A second expire without a fresh join violates again (the join was
  // consumed).
  SpanEvent again = expire;
  again.time = 12.0;
  const auto reuse = check_invariants({join, expire, again});
  ASSERT_EQ(reuse.size(), 1u);
  EXPECT_EQ(std::string(reuse.front().invariant),
            "community_expire_has_join");
}

TEST(Invariants, FlagsNonMonotoneEpisodeIds) {
  SpanEvent first = make(1.0, 6, EventKind::kHelpSent);
  first.episode = 10;
  SpanEvent second = make(2.0, 6, EventKind::kHelpSent);
  second.episode = 10;  // reused id
  const auto violations = check_invariants({first, second});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant), "episode_monotone");

  // Different nodes may interleave ids freely — the counter is shared.
  SpanEvent other = make(1.5, 7, EventKind::kHelpSent);
  other.episode = 11;
  EXPECT_TRUE(check_invariants({first, other}).empty());
}

TEST(Invariants, FlagsPledgeEchoingUnknownEpisode) {
  SpanEvent help = make(1.0, 3, EventKind::kHelpSent);
  help.episode = 1;
  SpanEvent pledge = make(2.0, 3, EventKind::kPledgeReceived);
  pledge.peer = 8;
  pledge.episode = 42;  // node 3 never opened round 42
  const auto violations = check_invariants({help, pledge});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(std::string(violations.front().invariant), "episode_echo");

  pledge.episode = 1;
  EXPECT_TRUE(check_invariants({help, pledge}).empty());
}

TEST(Invariants, ConfigOverridesChangeTheVerdict) {
  // interval 3.0 from initial 1.0 is illegal with alpha=1 but legal with
  // alpha=2 (1 + 1*2 = 3).
  SpanEvent event = make(1.0, 0, EventKind::kHelpInterval);
  event.interval = 3.0;
  EXPECT_FALSE(check_invariants({event}).empty());
  InvariantConfig config;
  config.alpha = 2.0;
  EXPECT_TRUE(check_invariants({event}, config).empty());
}

TEST(Invariants, ViolationNamesTheWholeCatalogDistinctly) {
  // One stream violating several invariants at once reports each by name.
  std::vector<SpanEvent> events;
  SpanEvent jump = make(1.0, 0, EventKind::kHelpInterval);
  jump.interval = 55.5;
  events.push_back(jump);
  SpanEvent pledge = make(2.0, 1, EventKind::kPledgeSent);
  pledge.episode = 3;
  pledge.availability = 0.0;
  events.push_back(pledge);
  SpanEvent expire = make(3.0, 2, EventKind::kCommunityExpire);
  expire.peer = 0;
  events.push_back(expire);
  const auto names = violated_names(check_invariants(events));
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "help_interval_step");
  EXPECT_EQ(names[1], "solicited_pledge_threshold");
  EXPECT_EQ(names[2], "community_expire_has_join");
}

}  // namespace
}  // namespace realtor::obs
