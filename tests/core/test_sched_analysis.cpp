#include "sched/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/engine.hpp"

namespace realtor::sched {
namespace {

PeriodicTask make_task(double cost, double period, double deadline = 0.0,
                       int priority = 0) {
  PeriodicTask t;
  t.cost = cost;
  t.period = period;
  t.deadline = deadline > 0.0 ? deadline : period;
  t.priority = priority;
  return t;
}

TEST(Analysis, UtilizationSums) {
  const std::vector<PeriodicTask> tasks = {make_task(1.0, 4.0),
                                           make_task(2.0, 8.0)};
  EXPECT_DOUBLE_EQ(total_utilization(tasks), 0.5);
}

TEST(Analysis, LiuLaylandBoundValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // Approaches ln 2 for large n.
  EXPECT_NEAR(liu_layland_bound(1000), std::log(2.0), 1e-3);
  EXPECT_DOUBLE_EQ(liu_layland_bound(0), 0.0);
}

TEST(Analysis, RateMonotonicPriorityOrder) {
  std::vector<PeriodicTask> tasks = {make_task(1.0, 10.0), make_task(1.0, 2.0),
                                     make_task(1.0, 5.0)};
  assign_rate_monotonic_priorities(tasks);
  EXPECT_GT(tasks[1].priority, tasks[2].priority);  // period 2 beats 5
  EXPECT_GT(tasks[2].priority, tasks[0].priority);  // period 5 beats 10
}

TEST(Analysis, ResponseTimeTextbookExample) {
  // Classic example: C=(1,2,3), T=(4,6,12), RM priorities. Known response
  // times: R1=1, R2=3, R3=10 (e.g. Burns & Wellings).
  std::vector<PeriodicTask> tasks = {make_task(1.0, 4.0), make_task(2.0, 6.0),
                                     make_task(3.0, 12.0)};
  assign_rate_monotonic_priorities(tasks);
  const auto result = response_time_analysis(tasks);
  EXPECT_TRUE(result.schedulable);
  EXPECT_DOUBLE_EQ(result.response_times[0], 1.0);
  EXPECT_DOUBLE_EQ(result.response_times[1], 3.0);
  EXPECT_DOUBLE_EQ(result.response_times[2], 10.0);
}

TEST(Analysis, ResponseTimeDetectsOverload) {
  std::vector<PeriodicTask> tasks = {make_task(3.0, 4.0), make_task(3.0, 6.0)};
  assign_rate_monotonic_priorities(tasks);
  const auto result = response_time_analysis(tasks);
  EXPECT_FALSE(result.schedulable);  // U = 1.25
}

TEST(Analysis, RmUnschedulableButEdfSchedulable) {
  // U ~ 1.0: fails the RM analysis, passes EDF (implicit deadlines).
  std::vector<PeriodicTask> tasks = {make_task(2.0, 4.0), make_task(3.0, 6.0)};
  assign_rate_monotonic_priorities(tasks);
  EXPECT_NEAR(total_utilization(tasks), 1.0, 1e-12);
  const auto rta = response_time_analysis(tasks);
  EXPECT_FALSE(rta.schedulable);
  EXPECT_TRUE(edf_demand_test(tasks));
}

TEST(Analysis, EdfRejectsOverUtilization) {
  const std::vector<PeriodicTask> tasks = {make_task(3.0, 4.0),
                                           make_task(2.0, 6.0)};
  EXPECT_FALSE(edf_demand_test(tasks));
}

TEST(Analysis, EdfConstrainedDeadlineCanFailBelowFullUtilization) {
  // U = 0.75 but both deadlines are tight: demand at d=2 is 2.5 > 2.
  const std::vector<PeriodicTask> tasks = {make_task(1.0, 4.0, 2.0),
                                           make_task(1.5, 6.0, 2.0)};
  EXPECT_LT(total_utilization(tasks), 1.0);
  EXPECT_FALSE(edf_demand_test(tasks));
}

TEST(Analysis, EdfAcceptsRelaxedDeadlines) {
  const std::vector<PeriodicTask> tasks = {make_task(1.0, 4.0, 4.0),
                                           make_task(1.5, 6.0, 6.0)};
  EXPECT_TRUE(edf_demand_test(tasks));
}

// Ground-truth property: task sets accepted by the EDF demand test run
// without deadline misses on the simulated EDF scheduler; sets with
// utilization above 1 always miss.
class EdfAnalysisVsSimulation : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Simulates 200 time units of synchronous periodic releases.
  static std::uint64_t simulate_misses(const std::vector<PeriodicTask>& tasks) {
    sim::Engine engine;
    EdfScheduler scheduler(engine);
    std::uint64_t misses = 0;
    scheduler.set_completion_handler(
        [&misses](const Job&, SimTime, bool met) {
          if (!met) ++misses;
        });
    JobId next_id = 1;
    for (const PeriodicTask& task : tasks) {
      for (double release = 0.0; release < 200.0; release += task.period) {
        engine.schedule_at(release, [&scheduler, &next_id, task, release] {
          Job job;
          job.id = next_id++;
          job.cost = task.cost;
          job.release = release;
          job.deadline = release + task.deadline;
          scheduler.submit(job);
        });
      }
    }
    engine.run();
    return misses;
  }
};

TEST_P(EdfAnalysisVsSimulation, AcceptedSetsNeverMiss) {
  RngStream rng(GetParam(), "edf-prop");
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PeriodicTask> tasks;
    const int n = 2 + static_cast<int>(rng.uniform_index(4));
    for (int i = 0; i < n; ++i) {
      const double period = rng.uniform(2.0, 20.0);
      const double cost = rng.uniform(0.1, period * 0.4);
      const double deadline = rng.uniform(cost, period);
      tasks.push_back(make_task(cost, period, deadline));
    }
    if (edf_demand_test(tasks)) {
      EXPECT_EQ(simulate_misses(tasks), 0u)
          << "accepted set missed a deadline (seed " << GetParam()
          << ", trial " << trial << ")";
    }
  }
}

TEST_P(EdfAnalysisVsSimulation, OverloadedSetsAlwaysMiss) {
  RngStream rng(GetParam(), "edf-overload");
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<PeriodicTask> tasks;
    // Force utilization ~1.5.
    for (int i = 0; i < 3; ++i) {
      const double period = rng.uniform(2.0, 10.0);
      tasks.push_back(make_task(period * 0.5, period, period));
    }
    EXPECT_FALSE(edf_demand_test(tasks));
    EXPECT_GT(simulate_misses(tasks), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfAnalysisVsSimulation,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Fixed-priority ground truth: RTA-accepted sets never miss under the
// simulated static-priority scheduler.
TEST(Analysis, RtaAcceptedSetRunsCleanOnSimulatedScheduler) {
  std::vector<PeriodicTask> tasks = {make_task(1.0, 4.0), make_task(2.0, 6.0),
                                     make_task(3.0, 12.0)};
  assign_rate_monotonic_priorities(tasks);
  ASSERT_TRUE(response_time_analysis(tasks).schedulable);

  sim::Engine engine;
  EdfScheduler scheduler(engine);
  std::uint64_t misses = 0;
  scheduler.set_completion_handler([&misses](const Job&, SimTime, bool met) {
    if (!met) ++misses;
  });
  JobId next_id = 1;
  for (const PeriodicTask& task : tasks) {
    for (double release = 0.0; release < 240.0; release += task.period) {
      engine.schedule_at(release, [&, task, release] {
        Job job;
        job.id = next_id++;
        job.cost = task.cost;
        job.release = release;
        job.deadline = release + task.deadline;
        job.priority = task.priority;  // static priority dominates
        scheduler.submit(job);
      });
    }
  }
  engine.run();
  EXPECT_EQ(misses, 0u);
}

}  // namespace
}  // namespace realtor::sched
