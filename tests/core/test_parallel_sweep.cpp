// Determinism contract of the parallel sweep executor: for every jobs
// value, run_sweep must produce byte-identical aggregates, tables and
// callback sequences — parallelism may only change wall-clock time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <map>

#include "common/parallel.hpp"
#include "experiment/figures.hpp"
#include "experiment/sweep.hpp"
#include "net/message_ledger.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace.hpp"

namespace realtor::experiment {
namespace {

ScenarioConfig fast_base() {
  ScenarioConfig c;
  c.duration = 60.0;
  c.seed = 11;
  return c;
}

SweepOptions grid_options(unsigned jobs) {
  SweepOptions options;
  options.lambdas = {2.0, 6.0, 10.0};
  options.protocols = {proto::ProtocolKind::kRealtor,
                       proto::ProtocolKind::kPurePush};
  options.replications = 3;
  options.jobs = jobs;
  return options;
}

void expect_stats_identical(const OnlineStats& a, const OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());          // exact: merge order is fixed
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.ci95_halfwidth(), b.ci95_halfwidth());
}

void expect_cells_identical(const std::vector<SweepCell>& a,
                            const std::vector<SweepCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].lambda, b[i].lambda);
    expect_stats_identical(a[i].admission_probability,
                           b[i].admission_probability);
    expect_stats_identical(a[i].total_messages, b[i].total_messages);
    expect_stats_identical(a[i].messages_per_admitted,
                           b[i].messages_per_admitted);
    expect_stats_identical(a[i].migration_rate, b[i].migration_rate);
    expect_stats_identical(a[i].mean_occupancy, b[i].mean_occupancy);
    expect_stats_identical(a[i].evacuation_success, b[i].evacuation_success);
    EXPECT_EQ(a[i].summed.generated, b[i].summed.generated);
    EXPECT_EQ(a[i].summed.admitted_local, b[i].summed.admitted_local);
    EXPECT_EQ(a[i].summed.admitted_migrated, b[i].summed.admitted_migrated);
    EXPECT_EQ(a[i].summed.rejected, b[i].summed.rejected);
    EXPECT_EQ(a[i].summed.completed, b[i].summed.completed);
    EXPECT_EQ(a[i].summed.migration_attempts, b[i].summed.migration_attempts);
    const net::LedgerSnapshot la = a[i].summed.ledger.snapshot();
    const net::LedgerSnapshot lb = b[i].summed.ledger.snapshot();
    EXPECT_EQ(la.total_sends, lb.total_sends);
    EXPECT_EQ(la.total_cost, lb.total_cost);
    EXPECT_EQ(la.overhead_cost, lb.overhead_cost);
  }
}

/// The report surface the user actually sees, rendered to one string.
std::string render_tables(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  for (const Table& table : {fig5_admission_probability(cells),
                             fig6_message_overhead(cells),
                             fig7_cost_per_admitted(cells),
                             fig8_migration_rate(cells)}) {
    table.print(os);
    table.print_csv(os);
  }
  return os.str();
}

TEST(ParallelSweep, ParallelAggregatesByteIdenticalToSerial) {
  const auto serial = run_sweep(fast_base(), grid_options(1));
  const auto parallel = run_sweep(fast_base(), grid_options(4));
  expect_cells_identical(serial, parallel);
  EXPECT_EQ(render_tables(serial), render_tables(parallel));
}

TEST(ParallelSweep, DefaultJobsMatchesSerial) {
  const auto serial = run_sweep(fast_base(), grid_options(1));
  const auto hardware = run_sweep(fast_base(), grid_options(0));
  expect_cells_identical(serial, hardware);
}

TEST(ParallelSweep, OnRunFiresInSerialOrderUnderParallelism) {
  using Key = std::tuple<int, double, std::uint32_t>;
  const auto record_runs = [](unsigned jobs) {
    std::vector<Key> sequence;
    SweepOptions options = grid_options(jobs);
    options.on_run = [&sequence](const SweepCell& cell, std::uint32_t rep) {
      sequence.emplace_back(static_cast<int>(cell.kind), cell.lambda, rep);
    };
    run_sweep(fast_base(), options);
    return sequence;
  };
  const auto serial_seq = record_runs(1);
  const auto parallel_seq = record_runs(4);
  EXPECT_EQ(serial_seq.size(), 2u * 3u * 3u);
  EXPECT_EQ(serial_seq, parallel_seq);
}

/// Sink that records which run it belongs to; creation happens on worker
/// threads, so bookkeeping is mutex-guarded.
struct SinkLog {
  std::mutex mu;
  std::set<std::tuple<int, double, std::uint32_t>> runs;
  std::atomic<int> created{0};
};

class LoggingSink final : public obs::TraceSink {
 public:
  explicit LoggingSink(std::atomic<int>& events) : events_(events) {}
  void on_event(const obs::TraceEvent&) override { ++events_; }

 private:
  std::atomic<int>& events_;
};

TEST(ParallelSweep, TraceSinkFactoryCalledOncePerRun) {
  SinkLog log;
  std::atomic<int> events{0};
  SweepOptions options = grid_options(4);
  options.make_trace_sink =
      [&](const RunId& id) -> std::unique_ptr<obs::TraceSink> {
    const std::scoped_lock lock(log.mu);
    log.runs.emplace(static_cast<int>(id.kind), id.lambda, id.rep);
    ++log.created;
    return std::make_unique<LoggingSink>(events);
  };
  run_sweep(fast_base(), options);
  EXPECT_EQ(log.created.load(), 2 * 3 * 3);
  // Every (protocol, lambda, rep) combination got its own sink.
  EXPECT_EQ(log.runs.size(), 2u * 3u * 3u);
  EXPECT_GT(events.load(), 0);
}

/// Sink that renders every record to its JSONL line in arrival order —
/// the full byte-level trace of one run, episode ids, lineage ids and
/// causes included.
class RecordingSink final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    text_ += obs::format_jsonl(event);
    text_ += '\n';
  }
  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

TEST(ParallelSweep, EpisodeAndLineageIdsByteIdenticalAcrossJobs) {
  using Key = std::tuple<int, double, std::uint32_t>;
  // Each run writes into its own sink; the map is only read after
  // run_sweep returns, and distinct runs never share a sink, so the
  // worker threads touch disjoint entries.
  const auto record_traces = [](unsigned jobs) {
    std::map<Key, std::shared_ptr<RecordingSink>> sinks;
    std::mutex mu;
    SweepOptions options = grid_options(jobs);
    std::vector<std::shared_ptr<RecordingSink>> keep_alive;
    options.make_trace_sink =
        [&](const RunId& id) -> std::unique_ptr<obs::TraceSink> {
      auto sink = std::make_shared<RecordingSink>();
      {
        const std::scoped_lock lock(mu);
        sinks[Key{static_cast<int>(id.kind), id.lambda, id.rep}] = sink;
        keep_alive.push_back(sink);
      }
      // The sweep owns a forwarding wrapper; the shared_ptr keeps the
      // recorded text alive after the run's sink is destroyed.
      class Forward final : public obs::TraceSink {
       public:
        explicit Forward(std::shared_ptr<RecordingSink> to)
            : to_(std::move(to)) {}
        void on_event(const obs::TraceEvent& event) override {
          to_->on_event(event);
        }

       private:
        std::shared_ptr<RecordingSink> to_;
      };
      return std::make_unique<Forward>(std::move(sink));
    };
    run_sweep(fast_base(), options);
    std::map<Key, std::string> out;
    for (const auto& [key, sink] : sinks) out[key] = sink->text();
    return out;
  };

  const auto serial = record_traces(1);
  const auto parallel = record_traces(4);
  ASSERT_EQ(serial.size(), 2u * 3u * 3u);
  ASSERT_EQ(parallel.size(), serial.size());
  std::size_t with_lineage = 0;
  for (const auto& [key, text] : serial) {
    const auto it = parallel.find(key);
    ASSERT_NE(it, parallel.end());
    // Byte-identical JSONL per (protocol, lambda, rep): episode ids and
    // lineage id/cause fields must not depend on worker scheduling.
    EXPECT_EQ(text, it->second)
        << "protocol " << std::get<0>(key) << " lambda "
        << std::get<1>(key) << " rep " << std::get<2>(key);
    if (text.find("\"id\"") != std::string::npos &&
        text.find("\"cause\"") != std::string::npos) {
      ++with_lineage;
    }
  }
  // Underloaded cells never solicit help and carry no lineage; the
  // overloaded cells must, or the comparison above proves nothing.
  EXPECT_GT(with_lineage, 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialWhenOneJob) {
  // jobs=1 must run inline on the calling thread, in index order.
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ResolveJobs, ExplicitValuesPassThrough) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware default, always usable
}

}  // namespace
}  // namespace realtor::experiment
