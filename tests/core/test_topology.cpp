#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace realtor::net {
namespace {

TEST(Topology, PaperMeshHas25Nodes40Links) {
  // Fig. 4 of the paper: 25 nodes, 40 links.
  const Topology mesh = make_mesh(5, 5);
  EXPECT_EQ(mesh.num_nodes(), 25u);
  EXPECT_EQ(mesh.num_links(), 40u);
}

TEST(Topology, MeshDegreesAreCorrect) {
  const Topology mesh = make_mesh(5, 5);
  // Corners: 2; edges: 3; interior: 4.
  EXPECT_EQ(mesh.neighbors(0).size(), 2u);    // corner
  EXPECT_EQ(mesh.neighbors(2).size(), 3u);    // top edge
  EXPECT_EQ(mesh.neighbors(12).size(), 4u);   // center
  EXPECT_EQ(mesh.neighbors(24).size(), 2u);   // corner
}

TEST(Topology, HasLinkIsSymmetric) {
  const Topology mesh = make_mesh(3, 3);
  EXPECT_TRUE(mesh.has_link(0, 1));
  EXPECT_TRUE(mesh.has_link(1, 0));
  EXPECT_FALSE(mesh.has_link(0, 4));
}

TEST(Topology, TorusIsRegular) {
  const Topology torus = make_torus(4, 4);
  EXPECT_EQ(torus.num_links(), 32u);
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    EXPECT_EQ(torus.neighbors(n).size(), 4u);
  }
}

TEST(Topology, RingStarComplete) {
  const Topology ring = make_ring(6);
  EXPECT_EQ(ring.num_links(), 6u);
  const Topology star = make_star(6);
  EXPECT_EQ(star.num_links(), 5u);
  EXPECT_EQ(star.neighbors(0).size(), 5u);
  const Topology complete = make_complete(6);
  EXPECT_EQ(complete.num_links(), 15u);
}

TEST(Topology, RandomConnectedHasRequestedLinks) {
  const Topology t = make_random_connected(20, 35, 9);
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_EQ(t.num_links(), 35u);
}

TEST(Topology, RandomConnectedIsDeterministic) {
  const Topology a = make_random_connected(20, 35, 9);
  const Topology b = make_random_connected(20, 35, 9);
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
  }
}

TEST(Topology, LivenessAccounting) {
  Topology mesh = make_mesh(5, 5);
  EXPECT_EQ(mesh.alive_count(), 25u);
  EXPECT_EQ(mesh.alive_link_count(), 40u);
  mesh.set_alive(12, false);  // center node carries 4 links
  EXPECT_EQ(mesh.alive_count(), 24u);
  EXPECT_EQ(mesh.alive_link_count(), 36u);
  EXPECT_FALSE(mesh.alive(12));
  mesh.set_alive(12, true);
  EXPECT_EQ(mesh.alive_link_count(), 40u);
}

TEST(Topology, SetAliveIsIdempotentAndBumpsVersionOnlyOnChange) {
  Topology mesh = make_mesh(3, 3);
  const auto v0 = mesh.version();
  mesh.set_alive(0, true);  // already alive
  EXPECT_EQ(mesh.version(), v0);
  mesh.set_alive(0, false);
  EXPECT_GT(mesh.version(), v0);
  const auto v1 = mesh.version();
  mesh.set_alive(0, false);
  EXPECT_EQ(mesh.version(), v1);
}

TEST(Topology, AliveNeighborsFilterDeadPeers) {
  Topology mesh = make_mesh(3, 3);
  mesh.set_alive(1, false);
  const auto neighbors = mesh.alive_neighbors(0);
  EXPECT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0], 3u);
}

TEST(Topology, AliveNodesLists) {
  Topology mesh = make_mesh(2, 2);
  mesh.set_alive(2, false);
  const auto alive = mesh.alive_nodes();
  EXPECT_EQ(alive, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Topology, NeighborSpanMatchesAdjacency) {
  Topology mesh = make_mesh(3, 3);
  // Node 4 is the center: neighbors in link-insertion order.
  const NeighborSpan center = mesh.neighbors(4);
  EXPECT_EQ(center.size(), 4u);
  EXPECT_FALSE(center.empty());
  std::vector<NodeId> collected(center.begin(), center.end());
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<NodeId>{1, 3, 5, 7}));
  EXPECT_EQ(center[0], *center.begin());
  // Spans stay valid and correct after a liveness flip (CSR structure is
  // keyed to links, not liveness).
  mesh.set_alive(1, false);
  EXPECT_EQ(mesh.neighbors(4).size(), 4u);
}

TEST(Topology, ForEachAliveNeighborSkipsDead) {
  Topology mesh = make_mesh(3, 3);
  mesh.set_alive(1, false);
  mesh.set_alive(5, false);
  std::vector<NodeId> seen;
  mesh.for_each_alive_neighbor(4, [&](NodeId n) { seen.push_back(n); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<NodeId>{3, 7}));
}

TEST(Topology, ForEachAliveNodeMatchesAliveNodes) {
  Topology mesh = make_mesh(4, 4);
  mesh.set_alive(0, false);
  mesh.set_alive(9, false);
  std::vector<NodeId> streamed;
  mesh.for_each_alive_node([&](NodeId n) { streamed.push_back(n); });
  EXPECT_EQ(streamed, mesh.alive_nodes());
  EXPECT_EQ(streamed.size(), mesh.alive_count());
}

TEST(Topology, CsrSurvivesLinkAdditionAfterQuery) {
  Topology topo(4);
  topo.add_link(0, 1);
  EXPECT_EQ(topo.neighbors(0).size(), 1u);  // builds the CSR
  topo.add_link(0, 2);                      // invalidates it
  topo.add_link(2, 3);
  const NeighborSpan n0 = topo.neighbors(0);
  std::vector<NodeId> collected(n0.begin(), n0.end());
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(topo.neighbors(3).size(), 1u);
  EXPECT_TRUE(topo.neighbors(1).size() == 1u);
}

class MeshSizeTest
    : public ::testing::TestWithParam<std::pair<NodeId, NodeId>> {};

TEST_P(MeshSizeTest, LinkCountFormula) {
  const auto [w, h] = GetParam();
  const Topology mesh = make_mesh(w, h);
  // w*h nodes; h*(w-1) horizontal + w*(h-1) vertical links.
  EXPECT_EQ(mesh.num_nodes(), w * h);
  EXPECT_EQ(mesh.num_links(),
            static_cast<std::size_t>(h * (w - 1) + w * (h - 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSizeTest,
    ::testing::Values(std::pair<NodeId, NodeId>{1, 1},
                      std::pair<NodeId, NodeId>{2, 3},
                      std::pair<NodeId, NodeId>{5, 5},
                      std::pair<NodeId, NodeId>{10, 10},
                      std::pair<NodeId, NodeId>{3, 7}));

}  // namespace
}  // namespace realtor::net
