// Critical-path extraction over the lineage DAG: phase classification on
// hand-built chains, the telescoping-sum identity on real traced runs,
// and byte-determinism of the rendered reports.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace realtor::obs {
namespace {

using experiment::AttackWave;
using experiment::ScenarioConfig;
using experiment::Simulation;

SpanEvent make(double time, NodeId node, EventKind kind,
               std::uint64_t episode, std::uint64_t lineage,
               std::uint64_t cause, double backoff = -1.0) {
  SpanEvent event;
  event.time = time;
  event.node = node;
  event.kind = kind;
  event.episode = episode;
  event.lineage = lineage;
  event.cause = cause;
  event.backoff = backoff;
  return event;
}

/// The full REALTOR arc with one failed attempt: HELP -> PLEDGE ->
/// attempt -> abort -> retry -> success -> admission.
std::vector<SpanEvent> admitted_chain() {
  return {
      make(1.0, 0, EventKind::kHelpSent, 42, 1, 0, /*backoff=*/0.5),
      make(1.2, 1, EventKind::kHelpReceived, 42, 2, 1),
      make(1.2, 1, EventKind::kPledgeSent, 42, 3, 2),
      make(1.5, 0, EventKind::kPledgeReceived, 42, 4, 3),
      make(1.6, 0, EventKind::kMigrationAttempt, 42, 5, 4),
      make(1.7, 0, EventKind::kMigrationAbort, 42, 6, 5),
      make(1.8, 0, EventKind::kMigrationAttempt, 42, 7, 6),
      make(2.0, 0, EventKind::kMigrationSuccess, 42, 8, 7),
      make(2.0, 0, EventKind::kTaskAdmitMigrated, 42, 9, 8),
  };
}

TEST(CriticalPath, WalksTheChainAndClassifiesEveryPhase) {
  const CriticalPathAnalysis analysis =
      analyze_critical_paths(admitted_chain());
  ASSERT_EQ(analysis.paths.size(), 1u);
  EXPECT_EQ(analysis.episodes_without_terminal, 0u);
  EXPECT_EQ(analysis.unresolved_causes, 0u);

  const EpisodePath& path = analysis.paths[0];
  EXPECT_EQ(path.episode, 42u);
  EXPECT_EQ(path.origin, 0u);
  EXPECT_EQ(path.root_kind, EventKind::kHelpSent);
  EXPECT_EQ(path.terminal_kind, EventKind::kTaskAdmitMigrated);
  EXPECT_DOUBLE_EQ(path.backoff, 0.5);
  EXPECT_DOUBLE_EQ(path.total(), 0.5 + (2.0 - 1.0));

  ASSERT_EQ(path.edges.size(), 8u);
  const Phase expected[] = {
      Phase::kFloodPropagation,   // help_sent -> help_received
      Phase::kPledgeWait,         // help_received -> pledge_sent
      Phase::kPledgeWait,         // pledge_sent -> pledge_received
      Phase::kAdmissionDecision,  // pledge_received -> attempt
      Phase::kMigrationTransfer,  // attempt -> abort
      Phase::kAdmissionDecision,  // abort -> retry attempt
      Phase::kMigrationTransfer,  // attempt -> success
      Phase::kAdmissionDecision,  // success -> admit
  };
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    EXPECT_EQ(path.edges[i].phase, expected[i]) << "edge " << i;
  }
  EXPECT_TRUE(check_critical_paths(analysis).empty());
}

TEST(CriticalPath, TerminalPreferenceAdmissionBeatsPledge) {
  // Strip the chain after pledge_received: the pledge becomes the best
  // available terminal.
  std::vector<SpanEvent> events = admitted_chain();
  events.resize(4);
  const CriticalPathAnalysis analysis = analyze_critical_paths(events);
  ASSERT_EQ(analysis.paths.size(), 1u);
  EXPECT_EQ(analysis.paths[0].terminal_kind, EventKind::kPledgeReceived);
  EXPECT_EQ(analysis.paths[0].edges.size(), 3u);
}

TEST(CriticalPath, EpisodesWithoutTerminalAreCountedNotPathed) {
  std::vector<SpanEvent> events = {
      make(1.0, 0, EventKind::kHelpSent, 7, 1, 0, 0.0),
      make(1.1, 1, EventKind::kHelpReceived, 7, 2, 1),
  };
  const CriticalPathAnalysis analysis = analyze_critical_paths(events);
  EXPECT_TRUE(analysis.paths.empty());
  EXPECT_EQ(analysis.episodes_without_terminal, 1u);
}

TEST(CriticalPath, UnresolvedCauseRootsThePathAtTheBreak) {
  // A ring-evicted dump: the pledge survived but its ancestry did not.
  std::vector<SpanEvent> events = {
      make(1.5, 0, EventKind::kPledgeReceived, 7, 4, 3),
  };
  const CriticalPathAnalysis analysis = analyze_critical_paths(events);
  ASSERT_EQ(analysis.paths.size(), 1u);
  EXPECT_EQ(analysis.unresolved_causes, 1u);
  EXPECT_EQ(analysis.paths[0].root_kind, EventKind::kPledgeReceived);
  EXPECT_TRUE(analysis.paths[0].edges.empty());
  EXPECT_TRUE(check_critical_paths(analysis).empty());
}

TEST(CriticalPath, BlameRanksEdgesByDurationDescending) {
  const CriticalPathAnalysis analysis =
      analyze_critical_paths(admitted_chain());
  const std::string blame = render_blame(analysis, 3);
  EXPECT_NE(blame.find("top 3 slowest edges"), std::string::npos);
  // The slowest edges of the chain are the 0.3 s pledge wait and the
  // 0.2 s transfers; the head line must carry the largest duration.
  const std::size_t first_row = blame.find('\n') + 1;
  EXPECT_NE(blame.find("pledge_wait", first_row), std::string::npos);
}

ScenarioConfig overloaded_scenario(std::uint32_t seed) {
  ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = seed;
  config.attacks.push_back(AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

std::vector<SpanEvent> run_traced(const ScenarioConfig& config) {
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();
  return normalize_events(sink.events());
}

TEST(CriticalPath, RealRunPhasesSumToEpisodeLatency) {
  const std::vector<SpanEvent> events =
      run_traced(overloaded_scenario(7));
  const CriticalPathAnalysis analysis = analyze_critical_paths(events);
  ASSERT_FALSE(analysis.paths.empty());
  EXPECT_TRUE(check_critical_paths(analysis).empty());

  // The acceptance identity: per-episode phase attributions sum to the
  // episode's recorded latency. For admitted episodes the span builder
  // records the same endpoints independently (help_sent time and
  // task_admit_migrated time), so the two views must agree exactly.
  std::size_t cross_checked = 0;
  const std::vector<Episode> episodes = build_episodes(events);
  for (const EpisodePath& path : analysis.paths) {
    double edge_sum = 0.0;
    for (const CriticalEdge& edge : path.edges) {
      edge_sum += edge.duration();
    }
    EXPECT_NEAR(edge_sum, path.end - path.start, 1e-9)
        << "episode " << path.episode;
    if (path.root_kind != EventKind::kHelpSent ||
        path.terminal_kind != EventKind::kTaskAdmitMigrated) {
      continue;
    }
    for (const Episode& episode : episodes) {
      if (episode.id != path.episode) continue;
      if (!episode.started || !episode.has_admission()) break;
      EXPECT_NEAR(edge_sum,
                  episode.first_admission_time - episode.start_time, 1e-9)
          << "episode " << path.episode;
      ++cross_checked;
      break;
    }
  }
  EXPECT_GT(cross_checked, 0u);
}

TEST(CriticalPath, RenderIsByteDeterministicForAFixedSeed) {
  const ScenarioConfig config = overloaded_scenario(7);
  const CriticalPathAnalysis first =
      analyze_critical_paths(run_traced(config));
  const CriticalPathAnalysis second =
      analyze_critical_paths(run_traced(config));
  EXPECT_EQ(render_critical_path(first), render_critical_path(second));
  EXPECT_EQ(render_blame(first, 10), render_blame(second, 10));
  ASSERT_FALSE(first.paths.empty());
}

}  // namespace
}  // namespace realtor::obs
