#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sched/admission_test.hpp"
#include "sched/cus.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/engine.hpp"

namespace realtor::sched {
namespace {

Job make_job(JobId id, double cost, SimTime deadline, int priority = 0) {
  Job j;
  j.id = id;
  j.cost = cost;
  j.deadline = deadline;
  j.priority = priority;
  return j;
}

TEST(EdfScheduler, RunsSingleJob) {
  sim::Engine e;
  EdfScheduler s(e);
  std::vector<JobId> done;
  s.set_completion_handler([&](const Job& j, SimTime, bool met) {
    done.push_back(j.id);
    EXPECT_TRUE(met);
  });
  s.submit(make_job(1, 2.0, 10.0));
  e.run();
  EXPECT_EQ(done, (std::vector<JobId>{1}));
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.completed(), 1u);
}

TEST(EdfScheduler, EdfOrderWithinPriority) {
  sim::Engine e;
  EdfScheduler s(e);
  std::vector<JobId> done;
  s.set_completion_handler(
      [&](const Job& j, SimTime, bool) { done.push_back(j.id); });
  // All released at t=0; the one with the earliest deadline runs first,
  // preempting nothing since submissions happen before any service.
  e.schedule_at(0.0, [&] {
    s.submit(make_job(1, 1.0, 30.0));
    s.submit(make_job(2, 1.0, 10.0));
    s.submit(make_job(3, 1.0, 20.0));
  });
  e.run();
  EXPECT_EQ(done, (std::vector<JobId>{2, 3, 1}));
}

TEST(EdfScheduler, EarlierDeadlinePreempts) {
  sim::Engine e;
  EdfScheduler s(e);
  std::vector<std::pair<JobId, SimTime>> done;
  s.set_completion_handler([&](const Job& j, SimTime t, bool) {
    done.emplace_back(j.id, t);
  });
  e.schedule_at(0.0, [&] { s.submit(make_job(1, 10.0, 100.0)); });
  e.schedule_at(2.0, [&] { s.submit(make_job(2, 3.0, 6.0)); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 2u);
  EXPECT_DOUBLE_EQ(done[0].second, 5.0);   // 2 + 3
  EXPECT_EQ(done[1].first, 1u);
  EXPECT_DOUBLE_EQ(done[1].second, 13.0);  // 2 executed + 8 remaining + 3 paused
}

TEST(EdfScheduler, LaterDeadlineDoesNotPreempt) {
  sim::Engine e;
  EdfScheduler s(e);
  std::vector<JobId> done;
  s.set_completion_handler(
      [&](const Job& j, SimTime, bool) { done.push_back(j.id); });
  e.schedule_at(0.0, [&] { s.submit(make_job(1, 5.0, 10.0)); });
  e.schedule_at(1.0, [&] { s.submit(make_job(2, 1.0, 50.0)); });
  e.run();
  EXPECT_EQ(done, (std::vector<JobId>{1, 2}));
}

TEST(EdfScheduler, HigherStaticPriorityBeatsEarlierDeadline) {
  sim::Engine e;
  EdfScheduler s(e);
  std::vector<JobId> done;
  s.set_completion_handler(
      [&](const Job& j, SimTime, bool) { done.push_back(j.id); });
  e.schedule_at(0.0, [&] {
    s.submit(make_job(1, 1.0, 5.0, /*priority=*/0));
    s.submit(make_job(2, 1.0, 100.0, /*priority=*/1));
  });
  e.run();
  EXPECT_EQ(done, (std::vector<JobId>{2, 1}));
}

TEST(EdfScheduler, DeadlineMissesCounted) {
  sim::Engine e;
  EdfScheduler s(e);
  bool missed = false;
  s.set_completion_handler([&](const Job&, SimTime, bool met) {
    missed = !met;
  });
  s.submit(make_job(1, 5.0, 1.0));  // cannot possibly make it
  e.run();
  EXPECT_TRUE(missed);
  EXPECT_EQ(s.deadline_misses(), 1u);
}

TEST(EdfScheduler, BacklogTracksRemainingWork) {
  sim::Engine e;
  EdfScheduler s(e);
  e.schedule_at(0.0, [&] {
    s.submit(make_job(1, 4.0, 100.0));
    s.submit(make_job(2, 6.0, 200.0));
  });
  e.schedule_at(1.0, [&] { EXPECT_DOUBLE_EQ(s.backlog_seconds(), 9.0); });
  e.run();
  EXPECT_DOUBLE_EQ(s.backlog_seconds(), 0.0);
}

TEST(EdfScheduler, ClearDropsPendingWork) {
  sim::Engine e;
  EdfScheduler s(e);
  int completions = 0;
  s.set_completion_handler([&](const Job&, SimTime, bool) { ++completions; });
  e.schedule_at(0.0, [&] {
    s.submit(make_job(1, 5.0, 100.0));
    s.submit(make_job(2, 5.0, 100.0));
  });
  e.schedule_at(1.0, [&] { EXPECT_EQ(s.clear(), 2u); });
  e.run();
  EXPECT_EQ(completions, 0);
  EXPECT_TRUE(s.idle());
}

// Schedulability property: any job set with total utilization <= 1 under
// CUS deadline assignment meets all EDF deadlines.
class CusEdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CusEdfProperty, CusDeadlinesAreMetWhenUtilizationFits) {
  sim::Engine e;
  EdfScheduler s(e);
  std::uint64_t misses = 0;
  s.set_completion_handler([&](const Job&, SimTime, bool met) {
    if (!met) ++misses;
  });

  RngStream rng(GetParam(), "cus-prop");
  // Three servers with utilizations summing to 1.
  ConstantUtilizationServer servers[] = {
      ConstantUtilizationServer(0.5), ConstantUtilizationServer(0.3),
      ConstantUtilizationServer(0.2)};
  JobId next_id = 1;
  SimTime t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(1.0);
    const int which = static_cast<int>(rng.uniform_index(3));
    const double cost = rng.exponential(0.4);
    e.schedule_at(t, [&, which, cost] {
      Job j;
      j.id = next_id++;
      j.cost = cost;
      j.release = e.now();
      j.deadline = servers[which].assign_deadline(e.now(), cost);
      s.submit(j);
    });
  }
  e.run();
  EXPECT_EQ(misses, 0u);
  EXPECT_EQ(s.completed(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CusEdfProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ConstantUtilizationServer, DeadlineRule) {
  ConstantUtilizationServer cus(0.5);
  // Idle server: d = t + e/U.
  EXPECT_DOUBLE_EQ(cus.assign_deadline(10.0, 1.0), 12.0);
  // Busy server (request before previous deadline): d = d_prev + e/U.
  EXPECT_DOUBLE_EQ(cus.assign_deadline(11.0, 1.0), 14.0);
  // After the deadline passed: back to t + e/U.
  EXPECT_DOUBLE_EQ(cus.assign_deadline(20.0, 2.0), 24.0);
  EXPECT_DOUBLE_EQ(cus.budgeted_work(), 4.0);
}

TEST(ConstantUtilizationServer, ResetForgetsDeadline) {
  ConstantUtilizationServer cus(1.0);
  cus.assign_deadline(0.0, 5.0);
  cus.reset();
  EXPECT_DOUBLE_EQ(cus.current_deadline(), 0.0);
  EXPECT_DOUBLE_EQ(cus.budgeted_work(), 0.0);
}

TEST(UtilizationAccount, ReserveAndRelease) {
  UtilizationAccount account(1.0);
  EXPECT_TRUE(account.try_reserve(0.5));
  EXPECT_TRUE(account.try_reserve(0.5));
  EXPECT_FALSE(account.try_reserve(0.01));
  EXPECT_DOUBLE_EQ(account.headroom(), 0.0);
  account.release(0.5);
  EXPECT_TRUE(account.try_reserve(0.3));
  EXPECT_EQ(account.admitted(), 3u);
  EXPECT_EQ(account.rejected(), 1u);
}

TEST(UtilizationAccount, ExactFitAdmits) {
  UtilizationAccount account(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(account.try_reserve(0.1));
  }
  EXPECT_FALSE(account.would_admit(0.001));
}

}  // namespace
}  // namespace realtor::sched
