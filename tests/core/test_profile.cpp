// Hierarchical self-profiler: disabled scopes are inert, enabled scopes
// build a deterministic tree, and the TSV dump round-trips.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/profile.hpp"

namespace realtor::obs {
namespace {

/// The profiler is a process-wide singleton; every test starts from a
/// clean, disabled slate and leaves it that way.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
};

TEST_F(ProfileTest, DisabledScopesRecordNothing) {
  {
    ProfileScope a("outer");
    ProfileScope b("inner");
  }
  const std::vector<ProfileEntry> entries = Profiler::instance().snapshot();
  EXPECT_TRUE(entries.empty());
}

TEST_F(ProfileTest, NestedScopesBuildPathsAndCountCalls) {
  Profiler::instance().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    ProfileScope outer("engine/dispatch");
    {
      ProfileScope inner("proto/realtor");
    }
    {
      ProfileScope inner("proto/realtor");
    }
  }
  Profiler::instance().set_enabled(false);
  const std::vector<ProfileEntry> entries = Profiler::instance().snapshot();
  ASSERT_EQ(entries.size(), 2u);  // outer, inner
  EXPECT_EQ(entries[0].path, "engine/dispatch");
  EXPECT_EQ(entries[0].depth, 0);
  EXPECT_EQ(entries[0].calls, 3u);
  EXPECT_EQ(entries[1].path, "engine/dispatch/proto/realtor");
  EXPECT_EQ(entries[1].depth, 1);
  EXPECT_EQ(entries[1].calls, 6u);
  // Inclusive timing: the parent's total covers its children's.
  EXPECT_GE(entries[0].ns, entries[1].ns);
}

TEST_F(ProfileTest, SnapshotOrdersSiblingsByName) {
  Profiler::instance().set_enabled(true);
  {
    ProfileScope z("zeta");
  }
  {
    ProfileScope a("alpha");
  }
  {
    ProfileScope m("mid");
  }
  Profiler::instance().set_enabled(false);
  const std::vector<ProfileEntry> entries = Profiler::instance().snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].path, "alpha");
  EXPECT_EQ(entries[1].path, "mid");
  EXPECT_EQ(entries[2].path, "zeta");
}

TEST_F(ProfileTest, ConcurrentThreadsShareOneTreeWithoutLoss) {
  Profiler::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        ProfileScope outer("shared");
        ProfileScope inner("leaf");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  Profiler::instance().set_enabled(false);
  const std::vector<ProfileEntry> entries = Profiler::instance().snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, "shared");
  EXPECT_EQ(entries[0].calls,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(entries[1].path, "shared/leaf");
  EXPECT_EQ(entries[1].calls,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ProfileTest, TsvRoundTripsEveryField) {
  Profiler::instance().set_enabled(true);
  {
    ProfileScope outer("a");
    ProfileScope inner("b");
  }
  Profiler::instance().set_enabled(false);
  const std::vector<ProfileEntry> entries = Profiler::instance().snapshot();
  std::ostringstream dumped;
  write_profile_tsv(dumped, entries);
  std::istringstream loaded(dumped.str());
  const std::vector<ProfileEntry> parsed = parse_profile_tsv(loaded);
  ASSERT_EQ(parsed.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(parsed[i].path, entries[i].path);
    EXPECT_EQ(parsed[i].depth, entries[i].depth);
    EXPECT_EQ(parsed[i].calls, entries[i].calls);
    EXPECT_EQ(parsed[i].ns, entries[i].ns);
  }
}

TEST_F(ProfileTest, RenderTextListsEveryScopeOnce) {
  Profiler::instance().set_enabled(true);
  {
    ProfileScope outer("engine");
    ProfileScope inner("leaf");
  }
  Profiler::instance().set_enabled(false);
  const std::string text =
      render_profile_text(Profiler::instance().snapshot());
  EXPECT_NE(text.find("engine"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
}

}  // namespace
}  // namespace realtor::obs
