#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/timer.hpp"

namespace realtor::sim {
namespace {

TEST(Timer, FiresOnceAfterDelay) {
  Engine e;
  Timer t(e);
  int fired = 0;
  t.arm(2.0, [&] { ++fired; });
  EXPECT_TRUE(t.active());
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.active());
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Timer, RearmReplacesPrevious) {
  Engine e;
  Timer t(e);
  int first = 0, second = 0;
  t.arm(2.0, [&] { ++first; });
  t.arm(5.0, [&] { ++second; });
  e.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Timer, CancelStopsExpiry) {
  Engine e;
  Timer t(e);
  int fired = 0;
  t.arm(2.0, [&] { ++fired; });
  t.cancel();
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RestartExtendsDeadlineKeepingCallback) {
  Engine e;
  Timer t(e);
  SimTime fired_at = -1.0;
  t.arm(1.0, [&] { fired_at = e.now(); });
  e.schedule_at(0.5, [&] { t.restart(1.0); });  // push expiry to 1.5
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Timer, CallbackMayRearmItself) {
  Engine e;
  Timer t(e);
  int count = 0;
  t.arm(1.0, [&] {
    if (++count < 3) t.restart(1.0);
  });
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Timer, DestructorCancels) {
  Engine e;
  int fired = 0;
  {
    Timer t(e);
    t.arm(1.0, [&] { ++fired; });
  }
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicProcess, TicksAtInterval) {
  Engine e;
  std::vector<SimTime> ticks;
  PeriodicProcess p(e, 1.0, [&] { ticks.push_back(e.now()); });
  p.start();
  e.run_until(3.5);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 1.0);
  EXPECT_DOUBLE_EQ(ticks[1], 2.0);
  EXPECT_DOUBLE_EQ(ticks[2], 3.0);
}

TEST(PeriodicProcess, StopHalts) {
  Engine e;
  int ticks = 0;
  PeriodicProcess p(e, 1.0, [&] { ++ticks; });
  p.start();
  e.schedule_at(2.5, [&] { p.stop(); });
  e.run_until(10.0);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(p.running());
}

TEST(PeriodicProcess, DoubleStartIsIdempotent) {
  Engine e;
  int ticks = 0;
  PeriodicProcess p(e, 1.0, [&] { ++ticks; });
  p.start();
  p.start();
  e.run_until(2.5);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicProcess, SetIntervalWhileRunningReschedules) {
  Engine e;
  std::vector<SimTime> ticks;
  PeriodicProcess p(e, 1.0, [&] { ticks.push_back(e.now()); });
  p.start();
  e.schedule_at(1.5, [&] { p.set_interval(2.0); });
  e.run_until(6.0);
  // Tick at 1.0; interval change at 1.5 -> next ticks 3.5, 5.5.
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 1.0);
  EXPECT_DOUBLE_EQ(ticks[1], 3.5);
  EXPECT_DOUBLE_EQ(ticks[2], 5.5);
}

TEST(PeriodicProcess, RestartAfterStop) {
  Engine e;
  int ticks = 0;
  PeriodicProcess p(e, 1.0, [&] { ++ticks; });
  p.start();
  e.schedule_at(1.5, [&] { p.stop(); });
  e.schedule_at(4.0, [&] { p.start(); });
  e.run_until(6.5);
  // Ticks at 1.0, then (restarted at 4.0) at 5.0 and 6.0.
  EXPECT_EQ(ticks, 3);
}

}  // namespace
}  // namespace realtor::sim
