// EventStore ingest tests — the contract that makes the zero-copy store a
// drop-in for the legacy reader:
//
//   - whatever JsonlSink writes, load_trace_buffer() reads back exactly as
//     parse_jsonl_line() would (randomized round-trip over every payload
//     type, escape-heavy strings included);
//   - shard boundaries are invisible: any --jobs value produces the same
//     store and the same malformed accounting, even when lines straddle
//     chunk edges;
//   - malformed lines are counted with the legacy reader's exact error
//     strings and line numbers;
//   - flight dumps decode into the same event model the FlightDump reader
//     produces, including truncation salvage;
//   - the parse hot loop does not allocate per event (global operator new
//     counter — this file is its own test binary so the override only
//     observes event-store work).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_store.hpp"
#include "obs/flight_reader.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

// ---- global allocation counter ------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace realtor::obs {
namespace {

// ---- helpers ------------------------------------------------------------

std::vector<ParsedEvent> legacy_parse(const std::string& buffer) {
  std::vector<ParsedEvent> out;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ParsedEvent event;
    if (parse_jsonl_line(line, event)) out.push_back(std::move(event));
  }
  return out;
}

void expect_store_matches_legacy(const EventStore& store,
                                 const std::vector<ParsedEvent>& legacy) {
  ASSERT_EQ(store.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const EventView view = store[i];
    const ParsedEvent& event = legacy[i];
    EXPECT_EQ(view.time(), event.time) << "event " << i;
    EXPECT_EQ(view.node(), event.node) << "event " << i;
    EXPECT_EQ(view.kind(), event.kind) << "event " << i;
    ASSERT_EQ(view.field_count(), event.fields.size()) << "event " << i;
    const StoredField* field = view.fields_begin();
    for (std::size_t f = 0; f < event.fields.size(); ++f) {
      const auto& [key, value] = event.fields[f];
      EXPECT_EQ(store.name(field[f].key), key) << "event " << i;
      EXPECT_EQ(field[f].type, value.type) << "event " << i << " " << key;
      EXPECT_EQ(field[f].boolean, value.boolean) << "event " << i;
      EXPECT_EQ(field[f].text, value.text) << "event " << i << " " << key;
      if (value.type == JsonValue::Type::kNumber) {
        EXPECT_EQ(field[f].number, value.number) << "event " << i;
      } else {
        // The StoredField contract span's apply_field relies on.
        EXPECT_EQ(field[f].number, 0.0) << "event " << i << " " << key;
      }
    }
  }
}

void expect_same_store(const EventStore& a, const EventStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.fields().size(), b.fields().size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const EventRec& ra = a.records()[i];
    const EventRec& rb = b.records()[i];
    EXPECT_EQ(ra.time, rb.time) << i;
    EXPECT_EQ(ra.node, rb.node) << i;
    // Ids must match exactly — the parallel merge reproduces serial
    // first-appearance interning, not just equivalent names.
    EXPECT_EQ(ra.kind, rb.kind) << i;
    EXPECT_EQ(a.name(ra.kind), b.name(rb.kind)) << i;
    EXPECT_EQ(ra.field_begin, rb.field_begin) << i;
    EXPECT_EQ(ra.field_count, rb.field_count) << i;
  }
  for (std::size_t f = 0; f < a.fields().size(); ++f) {
    const StoredField& fa = a.fields()[f];
    const StoredField& fb = b.fields()[f];
    EXPECT_EQ(fa.key, fb.key) << f;
    EXPECT_EQ(a.name(fa.key), b.name(fb.key)) << f;
    EXPECT_EQ(fa.type, fb.type) << f;
    EXPECT_EQ(fa.boolean, fb.boolean) << f;
    EXPECT_EQ(fa.text, fb.text) << f;
    if (fa.type == JsonValue::Type::kNumber) {
      EXPECT_EQ(fa.number, fb.number) << f;
    }
  }
}

// ---- randomized sink -> reader round trip -------------------------------

TEST(EventStoreRoundTrip, RandomizedSinkOutputParsesIdentically) {
  // Static pools: TraceEvent stores key/value pointers, not copies.
  static const char* kKeys[] = {"episode", "origin",  "urgency", "answered",
                                "reason",  "payload", "k0",      "k1",
                                "k2",      "k3"};
  static const char* kStrings[] = {
      "plain",
      "",
      "with space",
      "quote\"back\\slash",
      "line\nbreak\ttab",
      "ctl\x01\x02\x1f",  // sink escapes these as \u00XX
      "del\x7f",
      "utf8 \xc3\xa9\xc3\xbc",  // raw UTF-8 passes through both paths
  };
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> time_dist(0.0, 1e4);
  std::uniform_real_distribution<double> value_dist(-1e6, 1e6);

  std::string buffer;
  for (int i = 0; i < 600; ++i) {
    const auto kind = static_cast<EventKind>(
        rng() % static_cast<std::uint32_t>(EventKind::kCount));
    const NodeId node = (rng() % 8 == 0) ? kInvalidNode : rng() % 10000;
    TraceEvent event(time_dist(rng), node, kind);
    const std::uint32_t fields = rng() % (kMaxTraceFields + 1);
    for (std::uint32_t f = 0; f < fields; ++f) {
      const char* key = kKeys[rng() % (sizeof kKeys / sizeof *kKeys)];
      switch (rng() % 4) {
        case 0:
          event.with(key, value_dist(rng));
          break;
        case 1:
          event.with(key, static_cast<std::uint64_t>(rng()));
          break;
        case 2:
          event.with(key, rng() % 2 == 0);
          break;
        default:
          event.with(key,
                     kStrings[rng() % (sizeof kStrings / sizeof *kStrings)]);
          break;
      }
    }
    buffer += format_jsonl(event);
    buffer += '\n';
    if (rng() % 16 == 0) buffer += '\n';  // blank lines are skipped
  }

  const std::vector<ParsedEvent> legacy = legacy_parse(buffer);
  ASSERT_EQ(legacy.size(), 600u);  // the sink never writes malformed lines

  for (const unsigned jobs : {1u, 3u}) {
    EventStore store;
    IngestStats stats;
    std::string error;
    ASSERT_TRUE(load_trace_buffer(std::string(buffer), store, stats, &error,
                                  jobs))
        << error;
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(stats.events, 600u);
    expect_store_matches_legacy(store, legacy);
  }
}

// ---- shard boundaries ---------------------------------------------------

TEST(EventStoreSharding, JobCountNeverChangesTheStore) {
  // ~1.2 MB of lines of wildly varying length, so with kMinShardBytes =
  // 64 KiB every jobs value from 2..8 actually shards, and boundaries
  // land mid-line everywhere. Sprinkled malformed lines check the stats
  // merge across shards too.
  std::mt19937 rng(7);
  std::string buffer;
  std::size_t malformed = 0;
  std::size_t nonempty = 0;
  std::size_t first_malformed = 0;
  while (buffer.size() < 1200 * 1024) {
    if (rng() % 97 == 0) {
      buffer += "{\"t\":broken";
      buffer += '\n';
      ++nonempty;
      ++malformed;
      if (first_malformed == 0) first_malformed = nonempty;
      continue;
    }
    TraceEvent event(static_cast<double>(nonempty), rng() % 4000,
                     EventKind::kNodeSample);
    event.with("cpu", static_cast<double>(rng() % 1000) / 1000.0);
    if (rng() % 3 == 0) {
      // Long escaped payload: decodes through the arena slow path and
      // stretches some lines across shard boundaries.
      static std::string long_text;
      long_text.assign(40 + rng() % 400, 'x');
      long_text += "\ttail";
      event.with("blob", long_text.c_str());
      buffer += format_jsonl(event);
    } else {
      buffer += format_jsonl(event);
    }
    buffer += '\n';
    ++nonempty;
  }

  EventStore serial;
  IngestStats serial_stats;
  ASSERT_TRUE(load_trace_buffer(std::string(buffer), serial, serial_stats,
                                nullptr, 1));
  EXPECT_EQ(serial_stats.shards, 1u);
  EXPECT_EQ(serial_stats.lines, nonempty);
  EXPECT_EQ(serial_stats.malformed, malformed);
  EXPECT_EQ(serial_stats.first_malformed_line, first_malformed);

  for (unsigned jobs = 2; jobs <= 8; ++jobs) {
    EventStore parallel;
    IngestStats stats;
    ASSERT_TRUE(load_trace_buffer(std::string(buffer), parallel, stats,
                                  nullptr, jobs));
    EXPECT_GT(stats.shards, 1u) << jobs;
    EXPECT_EQ(stats.lines, serial_stats.lines) << jobs;
    EXPECT_EQ(stats.events, serial_stats.events) << jobs;
    EXPECT_EQ(stats.malformed, serial_stats.malformed) << jobs;
    EXPECT_EQ(stats.first_malformed_line, serial_stats.first_malformed_line)
        << jobs;
    EXPECT_EQ(stats.first_error, serial_stats.first_error) << jobs;
    expect_same_store(serial, parallel);
  }
}

// ---- malformed accounting vs the legacy reader --------------------------

TEST(EventStoreMalformed, AccountingMatchesLegacyReader) {
  const std::string buffer =
      "{\"t\":1,\"kind\":\"help_sent\"}\n"
      "\n"
      "{broken\n"
      "{\"t\":2,\"node\":3,\"kind\":\"pledge_sent\",\"episode\":4}\n"
      "[\"not an object\"]\n"
      "{\"t\":\"oops\",\"kind\":\"help_sent\"}\n"
      "{\"t\":3,\"kind\":\"help_sent\"} trailing\n"
      "{\"t\":4,\"kind\":\"help_sent\",\"s\":\"unterminated\n"
      "{\"t\":5,\"kind\":\"help_sent\",\"s\":\"bad\\q\"}\n"
      "{\"t\":6,\"kind\":\"help_sent\"}\n";

  const std::string path =
      ::testing::TempDir() + "event_store_malformed.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << buffer;
  }
  std::vector<ParsedEvent> legacy;
  TraceLoadStats legacy_stats;
  ASSERT_TRUE(load_trace_file(path, legacy, legacy_stats));
  std::remove(path.c_str());

  EventStore store;
  IngestStats stats;
  ASSERT_TRUE(load_trace_buffer(std::string(buffer), store, stats));
  EXPECT_EQ(stats.lines, legacy_stats.lines);
  EXPECT_EQ(stats.events, legacy_stats.events);
  EXPECT_EQ(stats.malformed, legacy_stats.malformed);
  EXPECT_EQ(stats.first_malformed_line, legacy_stats.first_malformed_line);
  EXPECT_EQ(stats.first_error, legacy_stats.first_error);
  expect_store_matches_legacy(store, legacy);
}

TEST(EventStoreMalformed, ErrorStringsMatchParseJsonlLine) {
  const char* kBadLines[] = {
      "{broken",
      "[\"array\"]",
      "{\"t\":\"x\",\"kind\":\"help_sent\"}",
      "{\"node\":3,\"kind\":\"help_sent\"}",
      "{\"t\":1}",
      "{\"t\":1,\"kind\":\"help_sent\"}  junk",
      "{\"t\":1,\"kind\":\"help_sent\",\"s\":\"\\q\"}",
      "{\"t\":1,\"kind\":\"help_sent\",\"s\":\"open",
      "{\"t\":1,\"kind\":\"help_sent\",,}",
      "{\"t\":1e,\"kind\":\"help_sent\"}",
  };
  for (const char* line : kBadLines) {
    ParsedEvent event;
    std::string legacy_error;
    ASSERT_FALSE(parse_jsonl_line(line, event, &legacy_error)) << line;

    EventStore store;
    IngestStats stats;
    ASSERT_TRUE(load_trace_buffer(std::string(line) + "\n", store, stats));
    EXPECT_EQ(stats.malformed, 1u) << line;
    EXPECT_EQ(stats.first_malformed_line, 1u) << line;
    EXPECT_EQ(stats.first_error, legacy_error) << line;
  }
}

// ---- flight dump direct decode vs the FlightDump reader -----------------

TEST(EventStoreFlight, DirectDecodeMatchesLegacyDumpReader) {
  const std::string path = ::testing::TempDir() + "event_store_flight.bin";
  FlightRecorder recorder(/*capacity_per_ring=*/8);
  FlightRing& ring0 = recorder.ring(0);
  FlightRing& ring1 = recorder.ring(1);

  ring0.on_event(TraceEvent(1.0, 2, EventKind::kHelpSent)
                     .with("urgency", 0.75)
                     .with("episode", std::uint64_t{42}));
  ring0.on_event(TraceEvent(1.5, 3, EventKind::kPledgeSent)
                     .with("availability", 0.5)
                     .with("answered", true)
                     .with("reason", "solicited"));
  ring0.on_event(TraceEvent(2.0, kInvalidNode, EventKind::kEngineStep)
                     .with("processed", std::uint64_t{1000}));
  ring1.on_event(TraceEvent(1.25, 7, EventKind::kNodeSample)
                     .with("bad", std::numeric_limits<double>::quiet_NaN())
                     .with("inf", std::numeric_limits<double>::infinity())
                     .with("ninf",
                           -std::numeric_limits<double>::infinity()));
  // Overflow ring1 so dropped > 0 in the dump counters.
  for (int i = 0; i < 12; ++i) {
    ring1.on_event(TraceEvent(3.0 + i, 7, EventKind::kSystemSample)
                       .with("i", static_cast<std::uint64_t>(i)));
  }
  ASSERT_TRUE(recorder.dump(path));

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;

  EventStore store;
  FlightStoreInfo info;
  TraceLoadStats stats;
  ASSERT_TRUE(load_flight_file(path, store, info, stats, &error)) << error;
  std::remove(path.c_str());

  EXPECT_EQ(info.truncated, dump.truncated);
  EXPECT_EQ(info.total_recorded(), dump.total_recorded());
  EXPECT_EQ(info.total_dropped(), dump.total_dropped());
  ASSERT_EQ(info.rings.size(), dump.rings.size());
  for (std::size_t i = 0; i < info.rings.size(); ++i) {
    EXPECT_EQ(info.rings[i].source, dump.rings[i].source);
    EXPECT_EQ(info.rings[i].recorded, dump.rings[i].recorded);
    EXPECT_EQ(info.rings[i].dropped, dump.rings[i].dropped);
    EXPECT_EQ(info.rings[i].stored, dump.rings[i].stored);
  }
  EXPECT_EQ(stats.malformed, dump.malformed);
  EXPECT_EQ(stats.events, dump.events.size());
  expect_store_matches_legacy(store, dump.events);
}

TEST(EventStoreFlight, TruncatedDumpSalvagesLikeLegacyReader) {
  const std::string path =
      ::testing::TempDir() + "event_store_flight_cut.bin";
  FlightRecorder recorder(/*capacity_per_ring=*/64);
  FlightRing& ring = recorder.ring(0);
  for (int i = 0; i < 40; ++i) {
    ring.on_event(TraceEvent(static_cast<double>(i), i % 5,
                             EventKind::kNodeSample)
                      .with("cpu", 0.25)
                      .with("tag", "steady"));
  }
  ASSERT_TRUE(recorder.dump(path));

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream tmp;
    tmp << in.rdbuf();
    bytes = tmp.str();
  }
  bytes.resize(bytes.size() * 3 / 5);  // cut mid-ring
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_TRUE(dump.truncated);
  ASSERT_GT(dump.malformed, 0u);

  EventStore store;
  FlightStoreInfo info;
  TraceLoadStats stats;
  ASSERT_TRUE(load_flight_file(path, store, info, stats, &error)) << error;
  std::remove(path.c_str());

  EXPECT_TRUE(info.truncated);
  EXPECT_EQ(stats.malformed, dump.malformed);
  expect_store_matches_legacy(store, dump.events);
}

// ---- allocation behavior ------------------------------------------------

TEST(EventStoreAlloc, ParseHotLoopAllocationsAreAmortized) {
  constexpr std::size_t kEvents = 50000;
  std::string buffer;
  buffer.reserve(kEvents * 96);
  char line[160];
  for (std::size_t i = 0; i < kEvents; ++i) {
    std::snprintf(line, sizeof line,
                  "{\"t\":%zu.5,\"node\":%zu,\"kind\":\"node_sample\","
                  "\"cpu\":0.25,\"queue\":%zu,\"state\":\"steady\"}\n",
                  i, i % 1000, i % 7);
    buffer += line;
  }

  EventStore store;
  IngestStats stats;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  ASSERT_TRUE(load_trace_buffer(std::move(buffer), store, stats, nullptr, 1));
  const std::uint64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;

  ASSERT_EQ(store.size(), kEvents);
  ASSERT_EQ(stats.malformed, 0u);
  // Growth is amortized (geometric vectors, 64 KiB arena chunks, one
  // interner rehash chain): a tiny fraction of one allocation per event.
  EXPECT_LT(delta, kEvents / 50) << "parse loop allocates per event";
}

}  // namespace
}  // namespace realtor::obs
