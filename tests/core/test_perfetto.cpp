// Perfetto/Chrome-trace export: structural validity of the built event
// list (flow pairing, per-track time order) and well-formedness of the
// rendered JSON, on both synthetic chains and a real traced run.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "experiment/simulation.hpp"
#include "obs/critical_path.hpp"
#include "obs/perfetto.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace realtor::obs {
namespace {

using experiment::ScenarioConfig;
using experiment::Simulation;

std::vector<SpanEvent> run_traced(std::uint32_t seed) {
  ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 60.0;
  config.seed = seed;
  Simulation sim(config);
  MemorySink sink;
  sim.set_trace_sink(&sink);
  sim.run();
  return normalize_events(sink.events());
}

/// Every flow arrow must resolve: each "f" needs an "s" with its id, and
/// an "s" with no "f" would be a dangling arrow stub.
void expect_flows_paired(const std::vector<ChromeEvent>& events) {
  std::set<std::uint64_t> starts;
  std::set<std::uint64_t> finishes;
  for (const ChromeEvent& event : events) {
    if (event.ph == 's') {
      EXPECT_TRUE(starts.insert(event.flow_id).second)
          << "duplicate flow start " << event.flow_id;
    } else if (event.ph == 'f') {
      finishes.insert(event.flow_id);
    }
  }
  for (const std::uint64_t id : finishes) {
    EXPECT_EQ(starts.count(id), 1u) << "flow " << id << " has no start";
  }
  for (const std::uint64_t id : starts) {
    EXPECT_EQ(finishes.count(id), 1u) << "flow " << id << " has no finish";
  }
}

/// Slices on one (pid, tid) track must be in non-decreasing ts order
/// with enclosing slices first — what the sorted export guarantees.
void expect_tracks_monotone(const std::vector<ChromeEvent>& events) {
  std::map<std::pair<int, std::int64_t>, std::int64_t> last_ts;
  for (const ChromeEvent& event : events) {
    if (event.ph != 'X') continue;
    const auto key = std::make_pair(event.pid, event.tid);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(event.ts, it->second)
          << "track (" << event.pid << ", " << event.tid << ")";
    }
    last_ts[key] = event.ts;
  }
}

/// Minimal JSON well-formedness scan: quotes pair up, braces and
/// brackets balance outside strings, and no control characters leak in.
void expect_json_well_formed(const std::string& json) {
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else {
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
            << "control character inside a JSON string";
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Perfetto, SyntheticChainProducesEpisodeAndFlowTracks) {
  std::vector<SpanEvent> events;
  auto add = [&](double t, NodeId node, EventKind kind, std::uint64_t id,
                 std::uint64_t cause) {
    SpanEvent e;
    e.time = t;
    e.node = node;
    e.kind = kind;
    e.episode = 5;
    e.lineage = id;
    e.cause = cause;
    events.push_back(e);
  };
  add(1.0, 0, EventKind::kHelpSent, 1, 0);
  add(1.2, 1, EventKind::kHelpReceived, 2, 1);
  add(1.2, 1, EventKind::kPledgeSent, 3, 2);
  add(1.5, 0, EventKind::kPledgeReceived, 4, 3);

  const std::vector<ChromeEvent> chrome =
      build_chrome_events(events, analyze_critical_paths(events));
  expect_flows_paired(chrome);
  expect_tracks_monotone(chrome);

  std::size_t episode_slices = 0;
  std::size_t flow_starts = 0;
  for (const ChromeEvent& event : chrome) {
    if (event.pid == 2 && event.ph == 'X') ++episode_slices;
    if (event.ph == 's') ++flow_starts;
  }
  // The episode slice plus its three phase-edge slices.
  EXPECT_EQ(episode_slices, 4u);
  // Three messages crossed the wire: help, plus the pledge's two hops.
  EXPECT_EQ(flow_starts, 3u);
}

TEST(Perfetto, ProfileEntriesNestIntoCumulativeSlices) {
  std::vector<ProfileEntry> profile;
  profile.push_back({"engine", 0, 10, 5'000'000});
  profile.push_back({"engine/proto", 1, 10, 3'000'000});
  profile.push_back({"engine/transport", 1, 10, 1'000'000});

  const std::vector<ChromeEvent> chrome = build_chrome_events(
      {}, CriticalPathAnalysis{}, profile);
  std::vector<const ChromeEvent*> slices;
  for (const ChromeEvent& event : chrome) {
    if (event.pid == 3 && event.ph == 'X') slices.push_back(&event);
  }
  ASSERT_EQ(slices.size(), 3u);
  // Parent spans [0, 5000) us; children tile inside it in order.
  EXPECT_EQ(slices[0]->name, "engine");
  EXPECT_EQ(slices[0]->ts, 0);
  EXPECT_EQ(slices[0]->dur, 5000);
  EXPECT_EQ(slices[1]->name, "proto");
  EXPECT_EQ(slices[1]->ts, 0);
  EXPECT_EQ(slices[1]->dur, 3000);
  EXPECT_EQ(slices[2]->name, "transport");
  EXPECT_EQ(slices[2]->ts, 3000);
  EXPECT_EQ(slices[2]->dur, 1000);
  expect_tracks_monotone(chrome);
}

TEST(Perfetto, RealRunExportIsValidAndDeterministic) {
  const std::vector<ChromeEvent> chrome = build_chrome_events(
      run_traced(7),
      analyze_critical_paths(run_traced(7)));
  ASSERT_FALSE(chrome.empty());
  expect_flows_paired(chrome);
  expect_tracks_monotone(chrome);

  const std::string json = render_chrome_json(chrome);
  expect_json_well_formed(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

  // Same seed, fresh run: byte-identical export.
  const std::string again = render_chrome_json(build_chrome_events(
      run_traced(7), analyze_critical_paths(run_traced(7))));
  EXPECT_EQ(json, again);
}

}  // namespace
}  // namespace realtor::obs
