// Flight recorder: ring semantics (wrap-around, drop accounting), binary
// dump/load round trips across every payload type, the dump-on-attack
// window, and — the property the design stands on — field-for-field
// equivalence between a flight dump and a JSONL trace of the same seeded
// run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiment/simulation.hpp"
#include "obs/flight_reader.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TraceEvent numbered(double time, std::uint64_t seq) {
  TraceEvent event(time, 1, EventKind::kHelpSent);
  event.with("seq", seq);
  return event;
}

TEST(FlightRing, KeepsNewestAndCountsDrops) {
  NameTable names;
  FlightRing ring(/*source=*/7, /*capacity=*/4, names);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.on_event(numbered(static_cast<double>(i), i));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  std::vector<FlightRecord> records;
  const FlightRingInfo info = ring.snapshot(records);
  EXPECT_EQ(info.source, 7u);
  EXPECT_EQ(info.recorded, 10u);
  EXPECT_EQ(info.dropped, 6u);
  ASSERT_EQ(info.stored, 4u);
  ASSERT_EQ(records.size(), 4u);
  // Oldest → newest, and exactly the last four events survive the wrap.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(records[i].time, static_cast<double>(6 + i));
  }
}

TEST(FlightRing, UnderfilledRingStoresEverything) {
  NameTable names;
  FlightRing ring(0, 16, names);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.on_event(numbered(static_cast<double>(i), i));
  }
  std::vector<FlightRecord> records;
  const FlightRingInfo info = ring.snapshot(records);
  EXPECT_EQ(info.stored, 5u);
  EXPECT_EQ(info.dropped, 0u);
}

TEST(FlightRecorder, DumpRoundTripsEveryPayloadType) {
  const std::string path = temp_path("flight_payload_types.bin");
  FlightRecorder recorder(/*capacity_per_ring=*/32);
  FlightRing& ring = recorder.ring(0);

  TraceEvent event(2.5, 3, EventKind::kPledgeReceived);
  event.with("episode", 42)
      .with("availability", 0.625)
      .with("reason", "capacity")
      .with("answered", true)
      .with("bad", std::numeric_limits<double>::quiet_NaN());
  ring.on_event(event);
  ring.on_event(TraceEvent(3.0, kInvalidNode, EventKind::kSystemSample));
  ASSERT_TRUE(recorder.dump(path));

  ASSERT_TRUE(is_flight_file(path));
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 2u);

  const ParsedEvent& first = dump.events[0];
  EXPECT_DOUBLE_EQ(first.time, 2.5);
  EXPECT_EQ(first.node, 3u);
  EXPECT_EQ(first.kind, "pledge_received");
  EXPECT_DOUBLE_EQ(first.number("episode"), 42.0);
  EXPECT_DOUBLE_EQ(first.number("availability"), 0.625);
  const JsonValue* reason = first.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->type, JsonValue::Type::kString);
  EXPECT_EQ(reason->text, "capacity");
  const JsonValue* answered = first.find("answered");
  ASSERT_NE(answered, nullptr);
  EXPECT_EQ(answered->type, JsonValue::Type::kBool);
  EXPECT_TRUE(answered->boolean);
  // Non-finite doubles read back as the quoted strings the JSONL sink
  // would have written.
  const JsonValue* bad = first.find("bad");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->type, JsonValue::Type::kString);
  EXPECT_EQ(bad->text, "nan");

  // The system-wide record keeps its omitted-node sentinel.
  EXPECT_EQ(dump.events[1].node, kInvalidNode);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RepeatedDumpsOfOneRunAreByteIdentical) {
  const std::string path_a = temp_path("flight_dump_a.bin");
  const std::string path_b = temp_path("flight_dump_b.bin");
  FlightRecorder recorder(8);
  FlightRing& ring = recorder.ring(0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.on_event(numbered(static_cast<double>(i), i));
  }
  ASSERT_TRUE(recorder.dump(path_a));
  ASSERT_TRUE(recorder.dump(path_b));

  std::vector<ParsedEvent> ignored;
  std::string a;
  std::string b;
  for (auto [path, out] : {std::pair{&path_a, &a}, std::pair{&path_b, &b}}) {
    std::ifstream in(*path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
  }
  EXPECT_EQ(a, b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(FlightRecorder, MultiRingDumpMergesByTime) {
  // Agile shape: one ring per host, all sharing the recorder's name
  // table; the loader merges them into one time-ordered stream.
  const std::string path = temp_path("flight_multiring.bin");
  FlightRecorder recorder(16);
  FlightRing& a = recorder.ring(10, /*thread_safe=*/true);
  FlightRing& b = recorder.ring(11, /*thread_safe=*/true);
  a.on_event(numbered(1.0, 0));
  b.on_event(numbered(2.0, 1));
  a.on_event(numbered(3.0, 2));
  b.on_event(numbered(4.0, 3));
  ASSERT_TRUE(recorder.dump(path));

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_EQ(dump.rings.size(), 2u);
  EXPECT_EQ(dump.rings[0].source, 10u);
  EXPECT_EQ(dump.rings[1].source, 11u);
  ASSERT_EQ(dump.events.size(), 4u);
  for (std::size_t i = 0; i + 1 < dump.events.size(); ++i) {
    EXPECT_LE(dump.events[i].time, dump.events[i + 1].time);
  }
  std::remove(path.c_str());
}

// Overloaded 5x5 mesh with one partial attack — the same shape the
// trace-event system tests pin, small enough to run twice per test.
experiment::ScenarioConfig attack_scenario() {
  experiment::ScenarioConfig config;
  config.lambda = 12.0;
  config.duration = 120.0;
  config.seed = 7;
  config.sample_interval = 20.0;
  config.attacks.push_back(experiment::AttackWave{60.0, 3, 2.0, 30.0});
  return config;
}

bool same_event(const ParsedEvent& a, const ParsedEvent& b) {
  if (a.time != b.time || a.node != b.node || a.kind != b.kind ||
      a.fields.size() != b.fields.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    const auto& [key_a, value_a] = a.fields[i];
    const auto& [key_b, value_b] = b.fields[i];
    if (key_a != key_b || value_a.type != value_b.type) return false;
    switch (value_a.type) {
      case JsonValue::Type::kNumber:
        if (value_a.number != value_b.number) return false;
        break;
      case JsonValue::Type::kString:
        if (value_a.text != value_b.text) return false;
        break;
      case JsonValue::Type::kBool:
        if (value_a.boolean != value_b.boolean) return false;
        break;
      case JsonValue::Type::kNull:
        break;
    }
  }
  return true;
}

TEST(FlightRecorder, MatchesJsonlTraceOfTheSameRun) {
  const std::string jsonl_path = temp_path("flight_equiv.jsonl");
  const std::string flight_path = temp_path("flight_equiv.bin");

  {
    experiment::Simulation sim(attack_scenario());
    JsonlSink sink(jsonl_path);
    ASSERT_TRUE(sink.ok());
    sim.set_trace_sink(&sink);
    sim.run();
    sink.flush();
  }
  FlightRecorder recorder(1 << 20);  // large enough: nothing overwritten
  {
    experiment::Simulation sim(attack_scenario());
    sim.set_trace_sink(&recorder.ring(0));
    sim.run();
    ASSERT_TRUE(recorder.dump(flight_path));
  }
  EXPECT_EQ(recorder.total_dropped(), 0u);

  std::vector<ParsedEvent> jsonl_events;
  std::string error;
  ASSERT_TRUE(load_trace_file(jsonl_path, jsonl_events, &error)) << error;
  FlightDump dump;
  ASSERT_TRUE(load_flight_file(flight_path, dump, &error)) << error;

  ASSERT_EQ(dump.events.size(), jsonl_events.size());
  ASSERT_GT(jsonl_events.size(), 1000u);  // a real run, not a stub
  for (std::size_t i = 0; i < jsonl_events.size(); ++i) {
    ASSERT_TRUE(same_event(jsonl_events[i], dump.events[i]))
        << "event " << i << " diverged (" << jsonl_events[i].kind << ")";
  }
  std::remove(jsonl_path.c_str());
  std::remove(flight_path.c_str());
}

TEST(FlightRecorder, AttackDumpCapturesThePreKillWindow) {
  const std::string path = temp_path("flight_attack_window.bin");
  FlightRecorder recorder(kDefaultFlightCapacity);
  experiment::Simulation sim(attack_scenario());
  sim.set_trace_sink(&recorder.ring(0));
  SimTime kill_time = -1.0;
  std::size_t dumps = 0;
  sim.set_attack_wave_listener([&](std::size_t, SimTime time) {
    kill_time = time;
    std::string error;
    ASSERT_TRUE(recorder.dump(path, &error)) << error;
    ++dumps;
  });
  sim.run();
  ASSERT_EQ(dumps, 1u);
  ASSERT_GT(kill_time, 0.0);

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_FALSE(dump.events.empty());
  std::size_t kills = 0;
  for (const ParsedEvent& event : dump.events) {
    // Snapshot taken right after the kills landed: nothing from the
    // post-attack future can be in the file.
    ASSERT_LE(event.time, kill_time);
    if (event.kind == "node_killed") ++kills;
  }
  EXPECT_EQ(kills, 3u);  // the wave's victims, captured mid-flight
  std::remove(path.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a small single-ring dump and returns its bytes plus the offset
/// where the packed records begin (records are fixed-width and occupy the
/// file's tail, so the offset falls out of the sizes).
std::string small_dump(const std::string& path, std::uint64_t records,
                       std::size_t& records_begin) {
  FlightRecorder recorder(/*capacity_per_ring=*/64);
  FlightRing& ring = recorder.ring(0);
  for (std::uint64_t i = 0; i < records; ++i) {
    ring.on_event(numbered(static_cast<double>(i), i));
  }
  EXPECT_TRUE(recorder.dump(path));
  const std::string bytes = slurp(path);
  records_begin = bytes.size() - records * sizeof(FlightRecord);
  return bytes;
}

TEST(FlightReader, ByteTruncatedDumpsSalvageOrFailButNeverCrash) {
  const std::string path = temp_path("flight_truncation_fuzz.bin");
  std::size_t records_begin = 0;
  constexpr std::uint64_t kRecords = 12;
  const std::string full = small_dump(path, kRecords, records_begin);
  ASSERT_GT(records_begin, sizeof(kFlightMagic));
  ASSERT_EQ((full.size() - records_begin) % sizeof(FlightRecord), 0u);

  for (std::size_t len = 0; len <= full.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    spit(path, full.substr(0, len));
    FlightDump dump;
    std::string error;
    const bool loaded = load_flight_file(path, dump, &error);
    if (len < records_begin) {
      // The cut landed in the header (magic, name table, ring count or
      // the first ring header): nothing salvageable, clean failure.
      EXPECT_FALSE(loaded);
      EXPECT_FALSE(error.empty());
      continue;
    }
    ASSERT_TRUE(loaded) << error;
    // Salvage accounting: every record the ring header promised is either
    // a parsed event or counted as unrecoverable — none vanish silently.
    ASSERT_EQ(dump.rings.size(), 1u);
    EXPECT_EQ(dump.events.size() + dump.malformed, kRecords);
    const std::uint64_t intact =
        (len - records_begin) / sizeof(FlightRecord);
    EXPECT_EQ(dump.events.size(), intact);
    EXPECT_EQ(dump.truncated, len < full.size());
    if (len == full.size()) {
      EXPECT_EQ(dump.malformed, 0u);
    }
  }
  std::remove(path.c_str());
}

TEST(FlightReader, CorruptRecordIsCountedAndTheRestStillLoad) {
  const std::string path = temp_path("flight_corrupt_record.bin");
  std::size_t records_begin = 0;
  constexpr std::uint64_t kRecords = 8;
  std::string bytes = small_dump(path, kRecords, records_begin);

  // Stamp an impossible event kind into record 3. The kind byte follows
  // the record's time, episode and node fields.
  constexpr std::size_t kKindOffset = sizeof(double) +
                                      sizeof(std::uint64_t) +
                                      sizeof(std::uint32_t);
  bytes[records_begin + 3 * sizeof(FlightRecord) + kKindOffset] =
      static_cast<char>(0xFF);
  spit(path, bytes);

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  // Fixed-width records keep the cursor aligned past the damage: exactly
  // one record is lost, the remaining seven parse normally.
  EXPECT_EQ(dump.malformed, 1u);
  EXPECT_FALSE(dump.truncated);
  ASSERT_EQ(dump.events.size(), kRecords - 1);
  for (const ParsedEvent& event : dump.events) {
    EXPECT_EQ(event.kind, "help_sent");
  }
  std::remove(path.c_str());
}

TEST(FlightReader, SecondRingHeaderCutSalvagesTheFirstRing) {
  const std::string path = temp_path("flight_multiring_cut.bin");
  FlightRecorder recorder(16);
  FlightRing& a = recorder.ring(10);
  FlightRing& b = recorder.ring(11);
  a.on_event(numbered(1.0, 0));
  a.on_event(numbered(2.0, 1));
  b.on_event(numbered(3.0, 2));
  ASSERT_TRUE(recorder.dump(path));
  std::string bytes = slurp(path);

  // Cut inside the second ring's header: its records and counters are
  // gone, but ring 10 is intact and must survive.
  const std::size_t second_header_begin = bytes.size() -
                                          sizeof(FlightRecord) -
                                          sizeof(FlightRingInfo);
  spit(path, bytes.substr(0, second_header_begin + 4));

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  EXPECT_TRUE(dump.truncated);
  ASSERT_EQ(dump.rings.size(), 1u);
  EXPECT_EQ(dump.rings[0].source, 10u);
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_DOUBLE_EQ(dump.events[0].time, 1.0);
  EXPECT_DOUBLE_EQ(dump.events[1].time, 2.0);
  std::remove(path.c_str());
}

TEST(FlightDumpSink, DumpsOnFlushAndOnDestruction) {
  const std::string path = temp_path("flight_dump_sink.bin");
  {
    FlightDumpSink sink(path, /*capacity=*/8);
    sink.on_event(numbered(1.0, 0));
    sink.flush();
  }
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 1u);
  std::remove(path.c_str());

  {
    FlightDumpSink sink(path, 8);
    sink.on_event(numbered(2.0, 1));
    // No flush: the destructor must still write the file.
  }
  ASSERT_TRUE(load_flight_file(path, dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_DOUBLE_EQ(dump.events[0].time, 2.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace realtor::obs
