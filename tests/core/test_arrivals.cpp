#include "sim/arrivals.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace realtor::sim {
namespace {

TEST(PoissonArrivals, RateApproximatelyCorrect) {
  Engine e;
  std::uint64_t count = 0;
  PoissonArrivals arrivals(e, 7, /*rate=*/5.0, /*mean_size=*/5.0,
                           /*num_nodes=*/25,
                           [&](const Arrival&) { ++count; });
  arrivals.start();
  e.run_until(1000.0);
  // Expect ~5000; Poisson sd ~ 71.
  EXPECT_NEAR(static_cast<double>(count), 5000.0, 300.0);
}

TEST(PoissonArrivals, SizesHaveConfiguredMean) {
  Engine e;
  double total = 0.0;
  std::uint64_t count = 0;
  PoissonArrivals arrivals(e, 7, 10.0, 5.0, 25, [&](const Arrival& a) {
    total += a.size_seconds;
    ++count;
  });
  arrivals.start();
  e.run_until(2000.0);
  EXPECT_NEAR(total / static_cast<double>(count), 5.0, 0.2);
}

TEST(PoissonArrivals, NodesCoverRangeUniformly) {
  Engine e;
  std::vector<std::uint64_t> per_node(5, 0);
  PoissonArrivals arrivals(e, 7, 10.0, 5.0, 5, [&](const Arrival& a) {
    ASSERT_LT(a.node, 5u);
    ++per_node[a.node];
  });
  arrivals.start();
  e.run_until(2000.0);
  for (const auto c : per_node) {
    EXPECT_NEAR(static_cast<double>(c), 4000.0, 400.0);
  }
}

TEST(PoissonArrivals, TaskIdsAreSequential) {
  Engine e;
  TaskId expected = 0;
  PoissonArrivals arrivals(e, 3, 5.0, 5.0, 25, [&](const Arrival& a) {
    EXPECT_EQ(a.id, expected++);
  });
  arrivals.start();
  e.run_until(50.0);
  EXPECT_GT(expected, 100u);
}

TEST(PoissonArrivals, StopHaltsGeneration) {
  Engine e;
  std::uint64_t count = 0;
  PoissonArrivals arrivals(e, 3, 10.0, 5.0, 25,
                           [&](const Arrival&) { ++count; });
  arrivals.start();
  e.run_until(10.0);
  const std::uint64_t at_stop = count;
  arrivals.stop();
  e.run_until(100.0);
  EXPECT_EQ(count, at_stop);
}

TEST(PoissonArrivals, DeterministicAcrossRuns) {
  std::vector<SimTime> first, second;
  for (auto* sink : {&first, &second}) {
    Engine e;
    PoissonArrivals arrivals(e, 11, 4.0, 5.0, 25, [&](const Arrival& a) {
      sink->push_back(a.time);
    });
    arrivals.start();
    e.run_until(100.0);
  }
  EXPECT_EQ(first, second);
}

TEST(GeneratePoissonTrace, MatchesLiveGenerator) {
  const auto trace = generate_poisson_trace(11, 4.0, 5.0, 25, 200);
  Engine e;
  std::vector<Arrival> live;
  PoissonArrivals arrivals(e, 11, 4.0, 5.0, 25,
                           [&](const Arrival& a) { live.push_back(a); });
  arrivals.start();
  while (live.size() < 200) {
    ASSERT_GT(e.step(1), 0u);
  }
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(trace[i].time, live[i].time);
    EXPECT_DOUBLE_EQ(trace[i].size_seconds, live[i].size_seconds);
    EXPECT_EQ(trace[i].node, live[i].node);
    EXPECT_EQ(trace[i].id, live[i].id);
  }
}

TEST(TraceArrivals, ReplaysInOrder) {
  std::vector<Arrival> trace;
  for (int i = 0; i < 5; ++i) {
    Arrival a;
    a.id = static_cast<TaskId>(i);
    a.time = static_cast<SimTime>(i) * 2.0;
    a.size_seconds = 1.0;
    a.node = 0;
    trace.push_back(a);
  }
  Engine e;
  std::vector<TaskId> seen;
  std::vector<SimTime> at;
  TraceArrivals replay(e, trace, [&](const Arrival& a) {
    seen.push_back(a.id);
    at.push_back(e.now());
  });
  replay.start();
  e.run();
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], static_cast<TaskId>(i));
    EXPECT_DOUBLE_EQ(at[static_cast<std::size_t>(i)],
                     static_cast<SimTime>(i) * 2.0);
  }
}

}  // namespace
}  // namespace realtor::sim
