#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace realtor::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.pending(id));
  e.cancel(id);
  EXPECT_FALSE(e.pending(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  e.cancel(id);  // must not crash or affect anything
  EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      e.schedule_in(1.0, chain);
    }
  };
  e.schedule_in(1.0, chain);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, CallbackMayCancelLaterEvent) {
  Engine e;
  bool fired = false;
  const EventId victim = e.schedule_at(2.0, [&] { fired = true; });
  e.schedule_at(1.0, [&] { e.cancel(victim); });
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilAdvancesClockPastLastEvent) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending_count(), 1u);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, StepFiresLimitedEvents) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(static_cast<SimTime>(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(e.step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.step(10), 3u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.step(1), 0u);
}

TEST(Engine, ScheduleInUsesCurrentTime) {
  Engine e;
  SimTime observed = -1.0;
  e.schedule_at(2.0, [&] {
    e.schedule_in(3.0, [&] { observed = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(Engine, EventsProcessedCounts) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_in(1.0, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

// --- Slot-arena specifics: handle safety across slot reuse. -------------

TEST(Engine, CancelInvalidEventIsNoop) {
  Engine e;
  e.cancel(kInvalidEvent);
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(kInvalidEvent);
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, StaleHandleCannotCancelReusedSlot) {
  Engine e;
  bool survivor_fired = false;
  // Cancel the first event, freeing its slot; the second schedule reuses
  // that slot under a bumped generation.
  const EventId stale = e.schedule_at(1.0, [] { FAIL(); });
  e.cancel(stale);
  e.schedule_at(1.0, [&] { survivor_fired = true; });
  e.cancel(stale);  // double-cancel through the old handle
  EXPECT_FALSE(e.pending(stale));
  e.run();
  EXPECT_TRUE(survivor_fired);
}

TEST(Engine, HandleFromFiredEventCannotCancelReusedSlot) {
  Engine e;
  const EventId first = e.schedule_at(1.0, [] {});
  e.run();
  bool fired = false;
  e.schedule_at(2.0, [&] { fired = true; });  // reuses first's slot
  e.cancel(first);
  EXPECT_FALSE(e.pending(first));
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, FifoPreservedAcrossCancelAndReuse) {
  Engine e;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Interleave doomed and surviving events at one instant; cancelling the
  // doomed ones (freeing slots mid-sequence) must not reorder survivors.
  for (int i = 0; i < 8; ++i) {
    doomed.push_back(e.schedule_at(5.0, [] { FAIL(); }));
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
    e.cancel(doomed.back());
    e.schedule_at(5.0, [&order, i] { order.push_back(100 + i); });
  }
  e.run();
  // FIFO among simultaneous events follows scheduling order, even though
  // later schedules reuse slots freed by the cancels.
  std::vector<int> sorted_by_schedule;
  for (int i = 0; i < 8; ++i) {
    sorted_by_schedule.push_back(i);
    sorted_by_schedule.push_back(100 + i);
  }
  EXPECT_EQ(order, sorted_by_schedule);
}

TEST(Engine, SlotReuseAcrossManyCycles) {
  Engine e;
  std::uint64_t fired = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i) {
      ids.push_back(e.schedule_in(1.0 + i, [&] { ++fired; }));
    }
    for (int i = 0; i < 20; i += 2) {
      e.cancel(ids[static_cast<std::size_t>(i)]);
    }
    e.run();
    EXPECT_EQ(e.pending_count(), 0u);
  }
  EXPECT_EQ(fired, 50u * 10u);
}

TEST(Engine, CancelHeavyDrainFiresSurvivorsInOrder) {
  // Cancel far more events than survive, triggering the engine's internal
  // dead-entry compaction; survivors must still fire in time order.
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(e.schedule_at(static_cast<SimTime>(i), [] {}));
  }
  std::vector<SimTime> fire_times;
  for (int i = 0; i < 2000; ++i) {
    if (i % 10 != 0) {
      e.cancel(ids[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < 2000; i += 10) {
    e.schedule_at(static_cast<SimTime>(i) + 0.5,
                  [&] { fire_times.push_back(e.now()); });
  }
  EXPECT_EQ(e.pending_count(), 400u);
  e.run();
  EXPECT_EQ(fire_times.size(), 200u);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    ASSERT_LT(fire_times[i - 1], fire_times[i]);
  }
}

TEST(Engine, LargeCaptureCallbackFires) {
  // Captures beyond EventFn's inline buffer take the heap path; they must
  // still move into the arena and fire with their payload intact.
  Engine e;
  std::array<char, 256> payload{};
  payload.fill('x');
  payload.back() = 'y';
  char observed = '?';
  e.schedule_at(1.0, [payload, &observed] { observed = payload.back(); });
  e.run();
  EXPECT_EQ(observed, 'y');
}

TEST(Engine, ObserverSeesProcessedAndPendingCounts) {
  Engine e;
  std::vector<std::uint64_t> processed_samples;
  std::vector<std::size_t> pending_samples;
  e.set_observer(2, [&](SimTime, std::uint64_t processed,
                        std::size_t pending) {
    processed_samples.push_back(processed);
    pending_samples.push_back(pending);
  });
  for (int i = 0; i < 6; ++i) {
    e.schedule_at(static_cast<SimTime>(i + 1), [] {});
  }
  e.run();
  EXPECT_EQ(processed_samples, (std::vector<std::uint64_t>{2, 4, 6}));
  EXPECT_EQ(pending_samples, (std::vector<std::size_t>{4, 2, 0}));
}

// Property: random schedule/cancel interleavings preserve ordering.
class EngineOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOrderProperty, MonotoneFiringTimes) {
  Engine e;
  RngStream rng(GetParam(), "engine-prop");
  std::vector<SimTime> fire_times;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = rng.uniform(0.0, 100.0);
    ids.push_back(e.schedule_at(t, [&fire_times, &e] {
      fire_times.push_back(e.now());
    }));
  }
  // Cancel ~25% at random.
  std::size_t cancelled = 0;
  for (const EventId id : ids) {
    if (rng.bernoulli(0.25)) {
      e.cancel(id);
      ++cancelled;
    }
  }
  e.run();
  EXPECT_EQ(fire_times.size(), 500u - cancelled);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    ASSERT_LE(fire_times[i - 1], fire_times[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrderProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace realtor::sim
