// Warm-start sweep execution: the prefix planner's grouping rules, the
// engine's reserved-sequence tie-break blocks, phased-run equivalence, and
// (on Linux) the fork executor's byte-identity and failure reporting.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "experiment/warm_start.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/engine.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace realtor::experiment {
namespace {

ScenarioConfig attack_config(std::size_t victims) {
  ScenarioConfig c;
  c.duration = 40.0;
  c.lambda = 4.0;
  c.seed = 9;
  AttackWave wave;
  wave.time = 30.0;
  wave.count = victims;
  wave.grace = 1.0;
  wave.outage = 5.0;
  c.attacks = {wave};
  return c;
}

/// Every observable a run produces, rendered exactly — the equivalence
/// oracle for phased vs. one-shot execution and fork vs. thread.
std::string fingerprint(const RunMetrics& m) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << m.generated << '|' << m.admitted_local << '|' << m.admitted_migrated
     << '|' << m.rejected << '|' << m.arrivals_at_dead_nodes << '|'
     << m.completed << '|' << m.evacuation_candidates << '|' << m.evacuated
     << '|' << m.lost_to_attack << '|' << m.migration_attempts << '|'
     << m.migration_aborts << '|' << m.response_time.count() << '|'
     << m.response_time.mean() << '|' << m.response_time.variance() << '|'
     << m.ledger.total_sends() << '|' << m.ledger.total_cost() << '|'
     << m.ledger.overhead_cost() << '|' << m.mean_occupancy << '|'
     << m.mean_utilization;
  return os.str();
}

std::string fingerprint(const SweepCell& cell) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << static_cast<int>(cell.kind) << '|' << cell.lambda << '|'
     << cell.attack_set;
  for (const OnlineStats* stats :
       {&cell.admission_probability, &cell.total_messages,
        &cell.messages_per_admitted, &cell.migration_rate,
        &cell.mean_occupancy, &cell.evacuation_success}) {
    os << '|' << stats->count() << ':' << stats->mean() << ':'
       << stats->min() << ':' << stats->max() << ':' << stats->variance();
  }
  os << '|' << fingerprint(cell.summed);
  return os.str();
}

TEST(WarmStartPlan, CanonicalPrefixIgnoresAttacksOnly) {
  const ScenarioConfig a = attack_config(2);
  ScenarioConfig b = attack_config(7);
  b.attacks[0].time = 20.0;
  b.attacks[0].outage = 11.0;
  EXPECT_EQ(canonical_prefix(a), canonical_prefix(b));
  EXPECT_EQ(prefix_hash(a), prefix_hash(b));

  b.lambda = 5.0;
  EXPECT_NE(canonical_prefix(a), canonical_prefix(b));
  b = attack_config(7);
  b.seed = 10;
  EXPECT_NE(canonical_prefix(a), canonical_prefix(b));
  b = attack_config(7);
  b.protocol_kind = proto::ProtocolKind::kPurePush;
  EXPECT_NE(canonical_prefix(a), canonical_prefix(b));
  b = attack_config(7);
  b.protocol.alpha += 1e-12;  // bit-exact: any double change splits
  EXPECT_NE(canonical_prefix(a), canonical_prefix(b));
}

TEST(WarmStartPlan, GroupsSharedPrefixesAndKeepsPointOrder) {
  std::vector<ScenarioConfig> points = {attack_config(2), attack_config(4),
                                        attack_config(6)};
  points[1].attacks[0].time = 25.0;
  const auto classes = plan_warm_start(points);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_TRUE(classes[0].forkable);
  EXPECT_EQ(classes[0].members, (std::vector<std::size_t>{0, 1, 2}));
  // Snapshot barrier: the earliest divergence over the members.
  EXPECT_DOUBLE_EQ(classes[0].prefix_end, 25.0);
}

TEST(WarmStartPlan, NonGroupablePointsGetSingletonClasses) {
  // Engine-observer sampling sees deferred attack events in its pending
  // count, so those points may never share a snapshot parent.
  std::vector<ScenarioConfig> sampled = {attack_config(2), attack_config(4)};
  sampled[0].engine_sample_every = 100;
  sampled[1].engine_sample_every = 100;
  auto classes = plan_warm_start(sampled);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_FALSE(classes[0].forkable);
  EXPECT_FALSE(classes[1].forkable);

  std::vector<ScenarioConfig> external = {attack_config(2), attack_config(4)};
  external[0].external_arrivals = true;
  external[1].external_arrivals = true;
  classes = plan_warm_start(external);
  EXPECT_EQ(classes.size(), 2u);

  // A wave at t = 0 leaves no prefix to share.
  std::vector<ScenarioConfig> immediate = {attack_config(2),
                                           attack_config(4)};
  immediate[0].attacks[0].time = 0.0;
  classes = plan_warm_start(immediate);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_FALSE(classes[0].forkable);
  EXPECT_FALSE(classes[1].forkable);
}

TEST(EngineWarmStart, RunUntilBeforeLeavesBarrierEventsPending) {
  sim::Engine engine;
  std::vector<int> fired;
  engine.schedule_at(1.0, [&] { fired.push_back(1); });
  engine.schedule_at(2.0, [&] { fired.push_back(2); });
  engine.schedule_at(2.0, [&] { fired.push_back(3); });
  engine.schedule_at(3.0, [&] { fired.push_back(4); });
  engine.run_until_before(2.0);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EngineWarmStart, ReservedBlockWinsEqualTimeTies) {
  // The warm-start contract: events armed into a block reserved earlier
  // beat later-scheduled events in the equal-time FIFO tie-break, exactly
  // as if they had been scheduled at reservation position.
  sim::Engine engine;
  std::string order;
  engine.schedule_at(5.0, [&] { order += 'A'; });
  const std::uint32_t first = engine.reserve_seqs(2);
  engine.schedule_at(5.0, [&] { order += 'B'; });
  engine.schedule_at(5.0, [&] { order += 'C'; });
  engine.use_reserved_seqs(first, 2);
  engine.schedule_at(5.0, [&] { order += 'D'; });
  engine.schedule_at(5.0, [&] { order += 'E'; });
  engine.end_reserved_seqs();
  engine.run();
  EXPECT_EQ(order, "ADEBC");
}

TEST(WarmStart, PhasedRunMatchesOneShotRun) {
  const ScenarioConfig config = attack_config(4);

  Simulation oneshot(config);
  const std::string expected = fingerprint(oneshot.run());

  ScenarioConfig deferred_config = config;
  deferred_config.attacks.clear();
  Simulation phased(deferred_config);
  // Over-reserve on purpose: a snapshot parent sizes the block for its
  // largest member, so smaller members must survive a surplus.
  phased.defer_attacks(
      Simulation::attack_event_count(config.attacks, false) + 7);
  phased.begin_run();
  phased.run_prefix(config.attacks[0].time);
  phased.arm_attacks(config.attacks);
  EXPECT_EQ(fingerprint(phased.finish_run()), expected);

  Simulation oneshot_again(config);
  EXPECT_EQ(fingerprint(oneshot_again.run()), expected);  // baseline sanity
}

TEST(WarmStart, ThreadExecRunsEveryPointInProcess) {
  std::vector<ScenarioConfig> points = {attack_config(2), attack_config(5)};
  WarmStartOptions options;
  options.exec = SweepExec::kThread;
  options.jobs = 2;
  const WarmStartOutcome outcome = run_warm_start(points, options);
  ASSERT_TRUE(outcome.all_ok());
  EXPECT_EQ(outcome.forked_points, 0u);
  for (const PointResult& result : outcome.results) {
    EXPECT_FALSE(result.forked);
    EXPECT_EQ(result.exit_status, 0);
  }
}

#if defined(__linux__)

TEST(WarmStartFork, ForkMatchesThreadByteForByte) {
  ASSERT_TRUE(fork_exec_supported());
  ScenarioConfig base;
  base.duration = 60.0;
  base.seed = 5;

  SweepOptions options;
  options.lambdas = {4.0, 8.0};
  options.protocols = {proto::ProtocolKind::kRealtor,
                       proto::ProtocolKind::kPurePush};
  options.replications = 2;
  options.jobs = 4;
  AttackWave wave;
  wave.time = 45.0;
  wave.grace = 1.0;
  wave.outage = 8.0;
  options.attack_sets.emplace_back();  // no-attack baseline set
  wave.count = 3;
  options.attack_sets.push_back({wave});
  wave.count = 6;
  options.attack_sets.push_back({wave});

  // The planner must find one forkable class per (protocol, lambda, rep)
  // slice, each holding all three attack sets.
  const auto classes =
      plan_warm_start(sweep_point_configs(base, options));
  ASSERT_EQ(classes.size(), 8u);
  for (const WarmStartClass& cls : classes) {
    EXPECT_TRUE(cls.forkable);
    EXPECT_EQ(cls.members.size(), 3u);
    EXPECT_DOUBLE_EQ(cls.prefix_end, 45.0);
  }

  options.exec = SweepExec::kThread;
  const auto thread_cells = run_sweep(base, options);
  options.exec = SweepExec::kFork;
  const auto fork_cells = run_sweep(base, options);
  ASSERT_EQ(thread_cells.size(), fork_cells.size());
  for (std::size_t i = 0; i < thread_cells.size(); ++i) {
    EXPECT_EQ(fingerprint(fork_cells[i]), fingerprint(thread_cells[i]));
  }
}

TEST(WarmStartFork, ChildExitStatusReportedPerPoint) {
  std::vector<ScenarioConfig> points = {attack_config(2), attack_config(5)};
  WarmStartOptions options;
  options.exec = SweepExec::kFork;
  options.jobs = 2;
  options.child_hook = [](std::size_t point) {
    if (point == 1) ::_exit(7);
  };
  const WarmStartOutcome outcome = run_warm_start(points, options);
  ASSERT_EQ(outcome.results.size(), 2u);
  EXPECT_TRUE(outcome.results[0].ok);
  EXPECT_TRUE(outcome.results[0].forked);
  EXPECT_GT(outcome.forked_points, 0u);
  EXPECT_FALSE(outcome.results[1].ok);
  EXPECT_EQ(outcome.results[1].exit_status, 7);
  EXPECT_NE(outcome.results[1].error.find("status 7"), std::string::npos);
  const std::vector<std::string> failures = outcome.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("point 1"), std::string::npos);
}

TEST(WarmStartFork, TruncatedResultRecordReportedPerPoint) {
  std::vector<ScenarioConfig> points = {attack_config(2), attack_config(5)};
  WarmStartOptions options;
  options.exec = SweepExec::kFork;
  options.jobs = 2;
  // Exiting cleanly before the suffix runs writes no result record: the
  // child's status is 0 but its pipe closes empty.
  options.child_hook = [](std::size_t point) {
    if (point == 0) ::_exit(0);
  };
  const WarmStartOutcome outcome = run_warm_start(points, options);
  EXPECT_FALSE(outcome.results[0].ok);
  EXPECT_EQ(outcome.results[0].exit_status, 0);
  EXPECT_NE(outcome.results[0].error.find("truncated result record"),
            std::string::npos);
  EXPECT_TRUE(outcome.results[1].ok);
}

TEST(WarmStartFork, FailedChildFailsTheSweepDeterministically) {
  ScenarioConfig base;
  base.duration = 40.0;
  base.seed = 3;
  SweepOptions options;
  options.lambdas = {4.0};
  options.protocols = {proto::ProtocolKind::kRealtor};
  options.replications = 1;
  AttackWave wave;
  wave.time = 30.0;
  wave.grace = 1.0;
  wave.outage = 5.0;
  wave.count = 2;
  options.attack_sets.push_back({wave});
  wave.count = 4;
  options.attack_sets.push_back({wave});
  options.jobs = 2;
  options.exec = SweepExec::kFork;
  options.child_hook = [](std::size_t) { ::_exit(9); };
  EXPECT_THROW(run_sweep(base, options), std::runtime_error);
}

TEST(WarmStartFork, EachChildDumpsItsOwnFlightFile) {
  std::vector<ScenarioConfig> points = {attack_config(2), attack_config(5)};
  const std::string prefix = ::testing::TempDir() + "warm_flight_point";
  WarmStartOptions options;
  options.exec = SweepExec::kFork;
  options.jobs = 2;
  options.make_sink = [&](std::size_t point) {
    return std::make_unique<obs::FlightDumpSink>(
        prefix + std::to_string(point) + ".bin", 1 << 16);
  };
  const WarmStartOutcome outcome = run_warm_start(points, options);
  ASSERT_TRUE(outcome.all_ok());
  std::vector<std::streampos> sizes;
  for (std::size_t point = 0; point < points.size(); ++point) {
    std::ifstream dump(prefix + std::to_string(point) + ".bin",
                       std::ios::binary | std::ios::ate);
    ASSERT_TRUE(dump.good()) << "missing dump for point " << point;
    EXPECT_GT(dump.tellg(), 0);
    sizes.push_back(dump.tellg());
  }
  // The two points differ (different victim counts), so identical files
  // would mean one child clobbered its sibling's dump.
  EXPECT_NE(sizes[0], sizes[1]);
}

#endif  // __linux__

}  // namespace
}  // namespace realtor::experiment
