// format_double — the locale-independence contract: every conversion is
// byte-identical to snprintf under the C locale, whatever LC_NUMERIC the
// process has set. (Machine-readable artifacts must parse back with
// from_chars, which only accepts '.' as the radix.)
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <string>

#include "common/format.hpp"

namespace realtor {
namespace {

TEST(FormatDouble, MatchesSnprintfInTheCLocale) {
  // The test suite runs in the default "C" locale, so plain snprintf is
  // the oracle here.
  const double values[] = {0.0,    -0.0,   1.0,        -0.5,  3.14159,
                           1e-9,   1e20,   123456.789, 0.125, -1234.5,
                           2.5e-3, 7.0 / 3.0};
  const char* formats[] = {"%g", "%.3f", "%.6f", "%.17g", "%.1f", "%12.3f"};
  char expected[64];
  char actual[64];
  for (const char* fmt : formats) {
    for (const double value : values) {
      const int want = std::snprintf(expected, sizeof expected, fmt, value);
      const int got = format_double(actual, sizeof actual, fmt, value);
      EXPECT_EQ(got, want) << fmt << " " << value;
      EXPECT_STREQ(actual, expected) << fmt << " " << value;
      EXPECT_EQ(format_double(fmt, value), std::string(expected));
    }
  }
}

TEST(FormatDouble, PrecisionHelperPinsHistoricalTableBytes) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatDouble, TruncatesLikeSnprintf) {
  char buf[5];
  const int written = format_double(buf, sizeof buf, "%.6f", 1.25);
  EXPECT_EQ(written, 8);  // would-be length of "1.250000"
  EXPECT_STREQ(buf, "1.25");
}

TEST(FormatDouble, IndependentOfProcessLocale) {
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  const char* comma_locales[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                 "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
  bool switched = false;
  for (const char* name : comma_locales) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      char probe[32];
      std::snprintf(probe, sizeof probe, "%g", 0.5);
      if (std::string(probe) == "0,5") {
        switched = true;
        break;
      }
    }
  }
  if (!switched) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-radix locale available in this image";
  }

  EXPECT_EQ(format_double("%g", 0.5), "0.5");
  EXPECT_EQ(format_double("%.3f", -12.25), "-12.250");
  EXPECT_EQ(format_double("%.17g", 0.1), "0.10000000000000001");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  char buf[32];
  format_double(buf, sizeof buf, "%8.3f", 1.5);
  EXPECT_STREQ(buf, "   1.500");

  std::setlocale(LC_NUMERIC, saved.c_str());
}

TEST(AppendDoubleShortest, ShortestRoundTripForm) {
  std::string out;
  append_double_shortest(out, 0.5);
  out += ',';
  append_double_shortest(out, 12.0);
  EXPECT_EQ(out, "0.5,12");
}

}  // namespace
}  // namespace realtor
