#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace realtor {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeMatchesSequential) {
  RngStream rng(3, "stats");
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  RngStream rng(3, "ci");
  OnlineStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats tw;
  tw.update(0.0, 1.0);   // value 1 on [0, 10)
  tw.update(10.0, 3.0);  // value 3 on [10, 20)
  EXPECT_DOUBLE_EQ(tw.average(20.0), 2.0);
}

TEST(TimeWeightedStats, UnequalIntervals) {
  TimeWeightedStats tw;
  tw.update(0.0, 4.0);  // 4 for 1s
  tw.update(1.0, 0.0);  // 0 for 3s
  EXPECT_DOUBLE_EQ(tw.average(4.0), 1.0);
}

TEST(TimeWeightedStats, EmptyAverageIsZero) {
  TimeWeightedStats tw;
  EXPECT_DOUBLE_EQ(tw.average(100.0), 0.0);
  EXPECT_TRUE(tw.empty());
}

TEST(TimeWeightedStats, WindowStartsAtFirstSample) {
  TimeWeightedStats tw;
  tw.update(50.0, 2.0);
  EXPECT_DOUBLE_EQ(tw.average(60.0), 2.0);
}

TEST(TimeWeightedStats, RepeatedSamplesAtSameInstant) {
  TimeWeightedStats tw;
  tw.update(0.0, 1.0);
  tw.update(0.0, 5.0);  // replaces the value at t=0 with zero elapsed time
  EXPECT_DOUBLE_EQ(tw.average(10.0), 5.0);
}

TEST(WelchTTest, DetectsClearlySeparatedMeans) {
  RngStream rng(5, "welch");
  OnlineStats a, b;
  for (int i = 0; i < 30; ++i) {
    a.add(rng.uniform(0.0, 1.0));
    b.add(rng.uniform(2.0, 3.0));
  }
  const WelchResult result = welch_t_test(a, b);
  EXPECT_TRUE(result.significant_at_5pct);
  EXPECT_LT(result.t, 0.0);  // mean(a) < mean(b)
  EXPECT_GT(result.degrees_of_freedom, 10.0);
}

TEST(WelchTTest, SameDistributionUsuallyInsignificant) {
  RngStream rng(5, "welch-null");
  int significant = 0;
  for (int trial = 0; trial < 40; ++trial) {
    OnlineStats a, b;
    for (int i = 0; i < 25; ++i) {
      a.add(rng.uniform01());
      b.add(rng.uniform01());
    }
    if (welch_t_test(a, b).significant_at_5pct) ++significant;
  }
  // ~5% false-positive rate; 40 trials should stay well under 8 hits.
  EXPECT_LE(significant, 7);
}

TEST(WelchTTest, TooFewSamplesIsInsignificant) {
  OnlineStats a, b;
  a.add(1.0);
  b.add(100.0);
  b.add(101.0);
  const WelchResult result = welch_t_test(a, b);
  EXPECT_FALSE(result.significant_at_5pct);
  EXPECT_DOUBLE_EQ(result.t, 0.0);
}

TEST(WelchTTest, ZeroVarianceDistinctMeansSignificant) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(1.0);
  b.add(2.0);
  b.add(2.0);
  EXPECT_TRUE(welch_t_test(a, b).significant_at_5pct);
  a.reset();
  b.reset();
  a.add(3.0);
  a.add(3.0);
  b.add(3.0);
  b.add(3.0);
  EXPECT_FALSE(welch_t_test(a, b).significant_at_5pct);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_EQ(h.bin(b), 1u);
  }
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, MedianOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  RngStream rng(9, "hist");
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace realtor
