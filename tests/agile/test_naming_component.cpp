#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "agile/component.hpp"
#include "agile/naming.hpp"

namespace realtor::agile {
namespace {

TEST(NamingService, RegisterLookupUnregister) {
  NamingService naming;
  naming.register_component(7, 3);
  EXPECT_EQ(naming.lookup(7), std::optional<NodeId>{3});
  EXPECT_EQ(naming.size(), 1u);
  naming.unregister(7);
  EXPECT_FALSE(naming.lookup(7).has_value());
  EXPECT_EQ(naming.size(), 0u);
}

TEST(NamingService, UpdateMovesLocationAndCounts) {
  NamingService naming;
  naming.register_component(7, 3);
  naming.update_location(7, 9);
  EXPECT_EQ(naming.lookup(7), std::optional<NodeId>{9});
  EXPECT_EQ(naming.updates(), 1u);
}

TEST(NamingService, UpdateOfUnknownComponentIsNoop) {
  NamingService naming;
  naming.update_location(42, 1);
  EXPECT_FALSE(naming.lookup(42).has_value());
  EXPECT_EQ(naming.updates(), 0u);
}

TEST(NamingService, ConcurrentRegistrationsAreSafe) {
  NamingService naming;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&naming, t] {
      for (TaskId id = 0; id < 500; ++id) {
        const TaskId key = static_cast<TaskId>(t) * 1000 + id;
        naming.register_component(key, static_cast<NodeId>(t));
        naming.update_location(key, static_cast<NodeId>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(naming.size(), 2000u);
  EXPECT_EQ(naming.updates(), 2000u);
  EXPECT_EQ(naming.lookup(1499), std::optional<NodeId>{2});
}

TEST(MigratableComponent, PackUnpackRoundTrip) {
  const MigratableComponent original(123456789ULL, 3.25);
  const auto packed = original.pack();
  const auto restored = MigratableComponent::unpack(packed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->id(), 123456789ULL);
  EXPECT_DOUBLE_EQ(restored->remaining_seconds(), 3.25);
}

TEST(MigratableComponent, UnpackRejectsNegativeRemaining) {
  const MigratableComponent bad(1, -1.0);
  EXPECT_FALSE(MigratableComponent::unpack(bad.pack()).has_value());
}

TEST(MigratableComponent, ZeroRemainingIsValid) {
  const MigratableComponent done(1, 0.0);
  const auto restored = MigratableComponent::unpack(done.pack());
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->remaining_seconds(), 0.0);
}

}  // namespace
}  // namespace realtor::agile
