// End-to-end tests of the threaded Agile Objects runtime. Time-compressed
// so each cluster run takes well under a second of wall time.
#include <gtest/gtest.h>

#include "agile/cluster.hpp"

namespace realtor::agile {
namespace {

ClusterConfig small_config(double lambda) {
  ClusterConfig c;
  c.num_hosts = 4;
  c.queue_capacity = 20.0;
  c.lambda = lambda;
  c.mean_task_size = 2.0;
  c.model_duration = 30.0;
  c.time_compression = 0.003;
  c.seed = 17;
  return c;
}

TEST(HostRuntime, AdmissionRpcBooksWork) {
  ClusterConfig config = small_config(1.0);
  Cluster cluster(config);
  HostRuntime& host = cluster.host(0);
  // A host that is not running refuses the negotiation outright.
  EXPECT_FALSE(host.request_admission(5.0).has_value());
  host.start();
  const auto r1 = host.request_admission(5.0);
  ASSERT_TRUE(r1.has_value());
  const auto r2 = host.request_admission(15.0);  // exactly fills 20s
  ASSERT_TRUE(r2.has_value());
  EXPECT_GT(r2->completion_time, r1->completion_time);
  EXPECT_FALSE(host.request_admission(0.5).has_value());  // full
  EXPECT_NEAR(host.occupancy(), 1.0, 0.05);
  host.stop();
}

TEST(HostRuntime, CusDeadlineMatchesFifoCompletion) {
  // With server utilization 1, the CUS deadline coincides with the FIFO
  // completion instant for back-to-back requests.
  ClusterConfig config = small_config(1.0);
  Cluster cluster(config);
  HostRuntime& host = cluster.host(1);
  host.start();
  const auto r = host.request_admission(4.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->deadline, r->completion_time, 1e-6);
  host.stop();
}

TEST(ClusterRun, LightLoadAdmitsEverything) {
  Cluster cluster(small_config(0.5));
  const ClusterMetrics m = cluster.run();
  EXPECT_GT(m.generated, 0u);
  EXPECT_EQ(m.arrivals_processed, m.generated);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_DOUBLE_EQ(m.admission_probability(), 1.0);
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_GT(m.completions, 0u);
}

TEST(ClusterRun, ArrivalAccountingBalances) {
  Cluster cluster(small_config(4.0));  // overload: 4 hosts x mean 2s
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed, m.generated);
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(ClusterRun, OverloadTriggersMigrationAndRejection) {
  ClusterConfig config = small_config(6.0);  // 300% load
  config.model_duration = 60.0;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_GT(m.rejected, 0u);
  EXPECT_GT(m.helps, 0u);
  EXPECT_GT(m.pledges, 0u);
  EXPECT_LT(m.admission_probability(), 1.0);
  // Every inbound transfer corresponds to a migrated admission.
  EXPECT_EQ(m.transfers, m.admitted_migrated);
}

TEST(ClusterRun, NamingTracksMigrations) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  // Every migration rebinds its component in the naming service.
  EXPECT_GE(m.naming_updates, m.admitted_migrated);
}

class ClusterLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClusterLossSweep, AccountingHoldsAtEveryLossRate) {
  ClusterConfig config = small_config(5.0);
  config.model_duration = 40.0;
  config.loss_probability = GetParam();
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
  if (GetParam() > 0.0) {
    EXPECT_GT(m.datagrams_dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, ClusterLossSweep,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5));

TEST(ClusterRun, SurvivesDatagramLoss) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  config.loss_probability = 0.2;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_GT(m.datagrams_dropped, 0u);
  // Loss degrades discovery but never breaks accounting (idempotent
  // soft-state protocol).
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(ClusterRun, NoDeadlineMissesUnderCusAdmission) {
  ClusterConfig config = small_config(5.0);
  config.model_duration = 60.0;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  // Admission control never over-books the server, so every admitted
  // timer expires by its CUS deadline.
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(ClusterRun, SpeculativeMigrationConserves) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  config.speculative_migration = true;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
  EXPECT_GT(m.speculative_accepted + m.speculative_rejected, 0u);
  EXPECT_EQ(m.speculative_accepted, m.admitted_migrated);
}

TEST(ClusterRun, NetworkDelayStillConserves) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  config.network_delay = 0.2;  // model seconds
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(ClusterRun, SpeculativeMigrationCutsLatency) {
  // §3: speculation overlaps the state transfer with the negotiation. With
  // a one-way delay d the sequential path costs ~3d (request + reply +
  // transfer) while the speculative path costs ~d.
  ClusterConfig base = small_config(6.0);
  base.model_duration = 90.0;
  base.network_delay = 0.5;
  base.time_compression = 0.01;  // keep wall delays well above jitter

  Cluster sequential(base);
  const ClusterMetrics ms = sequential.run();

  ClusterConfig spec_config = base;
  spec_config.speculative_migration = true;
  Cluster speculative(spec_config);
  const ClusterMetrics mp = speculative.run();

  ASSERT_GT(ms.migration_latency_samples, 0u);
  ASSERT_GT(mp.migration_latency_samples, 0u);
  EXPECT_GT(ms.mean_migration_latency(), 2.0 * base.network_delay);
  EXPECT_LT(mp.mean_migration_latency(), 2.0 * base.network_delay);
  EXPECT_LT(mp.mean_migration_latency(), ms.mean_migration_latency());
}

TEST(ClusterRun, KilledHostDropsTrafficAndClusterSurvives) {
  ClusterConfig config = small_config(3.0);
  config.model_duration = 40.0;
  ClusterConfig::Attack attack;
  attack.time = 10.0;
  attack.victim = 2;
  attack.outage = 0.0;  // never comes back
  config.attacks = {attack};
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.hosts_killed, 1u);
  EXPECT_EQ(m.hosts_restored, 0u);
  // Arrivals addressed to the dead host after t=10 bounce off its closed
  // inbox; everything that *was* processed still balances.
  EXPECT_GT(m.datagrams_dropped, 0u);
  EXPECT_LT(m.arrivals_processed, m.generated);
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
}

TEST(ClusterRun, RestartedHostRejoinsCold) {
  ClusterConfig config = small_config(3.0);
  config.model_duration = 60.0;
  ClusterConfig::Attack attack;
  attack.time = 15.0;
  attack.victim = 1;
  attack.outage = 15.0;  // back at t=30
  config.attacks = {attack};
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.hosts_killed, 1u);
  EXPECT_EQ(m.hosts_restored, 1u);
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
  // The restored reactor processes arrivals again: with 1/4 of hosts down
  // for only a quarter of the run, most arrivals are still processed.
  EXPECT_GT(static_cast<double>(m.arrivals_processed) /
                static_cast<double>(m.generated),
            0.85);
}

class ClusterDiscoveryModes
    : public ::testing::TestWithParam<proto::ProtocolKind> {};

TEST_P(ClusterDiscoveryModes, EveryModeConservesUnderOverload) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  config.discovery = GetParam();
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed, m.generated);
  EXPECT_EQ(m.arrivals_processed,
            m.admitted_local + m.admitted_migrated + m.rejected);
  EXPECT_GT(m.admitted_migrated, 0u) << "discovery mode found no targets";
}

TEST_P(ClusterDiscoveryModes, TrafficMatchesTheScheme) {
  ClusterConfig config = small_config(6.0);
  config.model_duration = 60.0;
  config.discovery = GetParam();
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  const bool pull = GetParam() == proto::ProtocolKind::kRealtor ||
                    GetParam() == proto::ProtocolKind::kAdaptivePull ||
                    GetParam() == proto::ProtocolKind::kPurePull;
  if (pull) {
    EXPECT_GT(m.helps, 0u);
  } else {
    EXPECT_EQ(m.helps, 0u);  // PUSH-based schemes never solicit
    EXPECT_GT(m.pledges, 0u);  // adverts counted on the same channel stat
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ClusterDiscoveryModes,
                         ::testing::ValuesIn(proto::kAllProtocolKinds),
                         [](const auto& tpi) {
                           std::string name = proto::to_string(tpi.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(ClusterRun, TwentyHostPaperScaleRuns) {
  ClusterConfig config;
  config.num_hosts = 20;       // paper's cluster size
  config.queue_capacity = 50;  // Fig. 9 queue_size
  config.lambda = 5.0;
  config.model_duration = 30.0;
  config.time_compression = 0.003;
  config.seed = 3;
  Cluster cluster(config);
  const ClusterMetrics m = cluster.run();
  EXPECT_EQ(m.arrivals_processed, m.generated);
  EXPECT_GT(m.admission_probability(), 0.8);
}

}  // namespace
}  // namespace realtor::agile
