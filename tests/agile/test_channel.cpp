#include "agile/channel.hpp"

#include "agile/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace realtor::agile {
namespace {

using namespace std::chrono_literals;

Datagram make_datagram(NodeId from, NodeId to, TaskId id) {
  TaskArrival task;
  task.id = id;
  task.size_seconds = 1.0;
  return Datagram{from, to, Payload{task}};
}

TaskId task_id_of(const Datagram& d) {
  return std::get<TaskArrival>(d.payload).id;
}

TEST(Inbox, FifoOrder) {
  Inbox inbox;
  inbox.push(make_datagram(0, 1, 10));
  inbox.push(make_datagram(0, 1, 11));
  EXPECT_EQ(inbox.size(), 2u);
  EXPECT_EQ(task_id_of(*inbox.try_pop()), 10u);
  EXPECT_EQ(task_id_of(*inbox.try_pop()), 11u);
  EXPECT_FALSE(inbox.try_pop().has_value());
}

TEST(Inbox, PopUntilTimesOutEmpty) {
  Inbox inbox;
  const auto start = std::chrono::steady_clock::now();
  const auto result = inbox.pop_until(start + 20ms);
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

TEST(Inbox, PopWokenByCrossThreadPush) {
  Inbox inbox;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    inbox.push(make_datagram(0, 1, 42));
  });
  const auto result =
      inbox.pop_until(std::chrono::steady_clock::now() + 500ms);
  producer.join();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(task_id_of(*result), 42u);
}

TEST(Inbox, CloseWakesWaiterAndRefusesPush) {
  Inbox inbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    inbox.close();
  });
  const auto result =
      inbox.pop_until(std::chrono::steady_clock::now() + 500ms);
  closer.join();
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(inbox.closed());
  EXPECT_FALSE(inbox.push(make_datagram(0, 1, 1)));
}

TEST(Inbox, DrainAllowedAfterClose) {
  Inbox inbox;
  inbox.push(make_datagram(0, 1, 5));
  inbox.close();
  const auto result = inbox.pop_until(std::chrono::steady_clock::now());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(task_id_of(*result), 5u);
}

TEST(DatagramNetwork, LosslessDeliversEverything) {
  DatagramNetwork net(3, 0.0, 1);
  for (int i = 0; i < 100; ++i) {
    net.send(0, 1, Payload{TaskArrival{static_cast<TaskId>(i), 1.0, 0.0}});
  }
  EXPECT_EQ(net.sent(), 100u);
  EXPECT_EQ(net.delivered(), 100u);
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.inbox(1).size(), 100u);
  EXPECT_EQ(net.inbox(2).size(), 0u);
}

TEST(DatagramNetwork, LossDropsApproximatelyConfiguredFraction) {
  DatagramNetwork net(2, 0.3, 7);
  for (int i = 0; i < 5000; ++i) {
    net.send(0, 1, Payload{TaskArrival{static_cast<TaskId>(i), 1.0, 0.0}});
  }
  const double drop_rate =
      static_cast<double>(net.dropped()) / static_cast<double>(net.sent());
  EXPECT_NEAR(drop_rate, 0.3, 0.03);
  EXPECT_EQ(net.delivered() + net.dropped(), net.sent());
}

TEST(DatagramNetwork, MulticastReachesAllButSender) {
  DatagramNetwork net(5, 0.0, 1);
  net.multicast(2, Payload{proto::Message{proto::HelpMsg{2, 0, 0.5}}});
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(2).size(), 0u);
  EXPECT_EQ(net.inbox(3).size(), 1u);
  EXPECT_EQ(net.inbox(4).size(), 1u);
}

TEST(DatagramNetwork, ReliablePathIgnoresLoss) {
  DatagramNetwork net(2, 0.9, 7);
  for (int i = 0; i < 200; ++i) {
    net.deliver_reliable(0, 1,
                         Payload{TaskArrival{static_cast<TaskId>(i), 1.0, 0.0}});
  }
  EXPECT_EQ(net.inbox(1).size(), 200u);
  EXPECT_EQ(net.dropped(), 0u);
}

TEST(DatagramNetwork, CloseAllStopsDelivery) {
  DatagramNetwork net(2, 0.0, 1);
  net.close_all();
  net.send(0, 1, Payload{TaskArrival{1, 1.0, 0.0}});
  EXPECT_EQ(net.delivered(), 0u);
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(Clock, CompressionScalesModelTime) {
  Clock model_clock(0.001);  // 1000x faster than real time
  std::this_thread::sleep_for(20ms);
  const SimTime t = model_clock.now();
  EXPECT_GT(t, 15.0);
  EXPECT_LT(t, 2000.0);
}

TEST(Clock, ResetEpochRestartsModelTime) {
  Clock model_clock(0.001);
  std::this_thread::sleep_for(10ms);
  model_clock.reset_epoch();
  EXPECT_LT(model_clock.now(), 5.0);
}

TEST(Clock, WallAtRoundTrips) {
  Clock model_clock(0.01);
  const auto wall = model_clock.wall_at(3.0);
  const auto dur = model_clock.to_wall(3.0);
  EXPECT_EQ(wall, model_clock.wall_at(0.0) + dur);
}

}  // namespace
}  // namespace realtor::agile
